//! Operational fingerprints (Algorithm 1) and the fingerprint library.
//!
//! A fingerprint is the precise API sequence identifying one high-level
//! administrative operation, learned offline by executing the operation
//! repeatedly in a controlled setting, filtering noise from each trace,
//! and intersecting the traces with the longest common subsequence. In the
//! regex representation, state-change APIs (POST/PUT/DELETE and RPCs)
//! become plain literals and everything else is starred (`X*`, optional):
//! GRETEL's matching prioritises state-change symbols (§5.3.1).

use crate::checkpoint::CheckpointError;
use crate::lcs::lcs;
use crate::noise_filter::filter_noise;
use gretel_model::{symbol, ApiId, Catalog, OpSpecId, OperationSpec};
use gretel_sim::{Deployment, Execution, FaultPlan, RunConfig, Runner};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// One element of a fingerprint's regex representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Atom {
    /// The API.
    pub api: ApiId,
    /// Whether the atom is starred (`X*`): non-state-change APIs may be
    /// missing from a snapshot without invalidating a match.
    pub starred: bool,
}

/// The learned fingerprint of one operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fingerprint {
    /// The operation this fingerprint identifies.
    pub op: OpSpecId,
    /// Ordered atoms.
    pub atoms: Vec<Atom>,
}

impl Fingerprint {
    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the fingerprint is empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Whether any atom references `api`.
    pub fn contains(&self, api: ApiId) -> bool {
        self.atoms.iter().any(|a| a.api == api)
    }

    /// The literal (state-change) sequence that must be present, in order,
    /// for a relaxed match. With `prune_rpcs` (the §6 optimization) RPC
    /// symbols are dropped from the pattern.
    pub fn literals(&self, catalog: &Catalog, prune_rpcs: bool) -> Vec<ApiId> {
        self.literals_iter(catalog, prune_rpcs).collect()
    }

    /// Iterator form of [`Self::literals`] for callers that only count or
    /// scan the literal sequence — no intermediate `Vec`.
    pub fn literals_iter<'a>(
        &'a self,
        catalog: &'a Catalog,
        prune_rpcs: bool,
    ) -> impl Iterator<Item = ApiId> + 'a {
        self.atoms
            .iter()
            .filter(|a| !a.starred)
            .filter(move |a| !(prune_rpcs && catalog.get(a.api).is_rpc()))
            .map(|a| a.api)
    }

    /// All atom APIs in order (for strict matching and set overlap).
    pub fn api_seq(&self) -> Vec<ApiId> {
        self.atoms.iter().map(|a| a.api).collect()
    }

    /// Number of atoms excluding RPCs (the "w/o RPC" fingerprint size of
    /// Table 1).
    pub fn len_without_rpcs(&self, catalog: &Catalog) -> usize {
        self.atoms.iter().filter(|a| !catalog.get(a.api).is_rpc()).count()
    }

    /// Truncate at the **last** occurrence of `api` (inclusive) —
    /// Algorithm 2's `TRUNCATE_OPERATION_FINGERPRINTS`. Returns `None`
    /// when `api` is absent.
    pub fn truncate_at_last(&self, api: ApiId) -> Option<Fingerprint> {
        let idx = self.atoms.iter().rposition(|a| a.api == api)?;
        Some(Fingerprint { op: self.op, atoms: self.atoms[..=idx].to_vec() })
    }

    /// Truncations at **every** occurrence of `api`. Algorithm 2 truncates
    /// at the last occurrence, implicitly assuming the fault hit it; when
    /// the same API appears several times in an operation the fault may
    /// have hit an earlier one, so the detector considers every candidate
    /// truncation point and keeps the best-matching.
    pub fn truncate_at_each(&self, api: ApiId) -> Vec<Fingerprint> {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.api == api)
            .map(|(idx, _)| Fingerprint { op: self.op, atoms: self.atoms[..=idx].to_vec() })
            .collect()
    }

    /// Bounded literal patterns centred on each occurrence of `api`:
    /// for every occurrence, up to `k/2` literals before and after it.
    /// Performance faults do not abort their operation, so the evidence
    /// around the anomalous API extends in both directions (§5.3.1:
    /// "GRETEL makes use of the entire context buffer"), but bounding the
    /// pattern keeps long operations matchable within a finite window.
    pub fn centered_literals(
        &self,
        catalog: &Catalog,
        prune_rpcs: bool,
        api: ApiId,
        k: usize,
    ) -> Vec<Vec<ApiId>> {
        // Work over atom positions so starred anomalous APIs (reads) can
        // anchor too; patterns keep only literal symbols.
        let keep = |a: &Atom| {
            !(a.starred || prune_rpcs && catalog.get(a.api).is_rpc())
        };
        let occurrences: Vec<usize> = self
            .atoms
            .iter()
            .enumerate()
            .filter(|&(_, a)| a.api == api)
            .map(|(i, _)| i)
            .collect();
        if occurrences.is_empty() {
            return Vec::new();
        }
        let half = (k / 2).max(1);
        occurrences
            .into_iter()
            .map(|pos| {
                // Collect up to `half` literals on each side of the
                // anchor atom (plus the anchor itself when literal).
                let mut before: Vec<ApiId> = self.atoms[..pos]
                    .iter()
                    .rev()
                    .filter(|a| keep(a))
                    .take(half)
                    .map(|a| a.api)
                    .collect();
                before.reverse();
                let mut pattern = before;
                if keep(&self.atoms[pos]) {
                    pattern.push(self.atoms[pos].api);
                }
                pattern.extend(
                    self.atoms[pos + 1..]
                        .iter()
                        .filter(|a| keep(a))
                        .take(half)
                        .map(|a| a.api),
                );
                pattern
            })
            .collect()
    }

    /// The Unicode regex string of the fingerprint (paper §6 encodes each
    /// API as one Unicode symbol; starred atoms get `*`).
    pub fn regex_string(&self) -> String {
        let mut out = String::with_capacity(self.atoms.len() * 2);
        for a in &self.atoms {
            out.push(symbol::encode(a.api));
            if a.starred {
                out.push('*');
            }
        }
        out
    }
}

/// Algorithm 1: build a fingerprint from repeated execution traces.
///
/// Traces are API-id sequences (one id per invocation). They are sorted by
/// length, noise-filtered, and intersected pairwise by LCS; the surviving
/// sequence becomes the atoms, starred according to state-change priority.
pub fn generate_fingerprint(
    catalog: &Catalog,
    op: OpSpecId,
    traces: &[Vec<ApiId>],
) -> Fingerprint {
    assert!(!traces.is_empty(), "need at least one trace");
    let mut sorted: Vec<&Vec<ApiId>> = traces.iter().collect();
    sorted.sort_by_key(|t| t.len());

    let mut f = filter_noise(catalog, sorted[0]);
    for t in &sorted[1..] {
        let filtered = filter_noise(catalog, t);
        f = lcs(&f, &filtered);
    }
    let atoms = f
        .into_iter()
        .map(|api| Atom { api, starred: !catalog.get(api).is_state_change() })
        .collect();
    Fingerprint { op, atoms }
}

/// Precomputed pattern data for one fingerprint: every slice a detector
/// can ask for — full or truncated atom sequences, literal sequences with
/// or without RPC pruning, bounded centred windows — is a borrow into
/// these vectors. Built once when the fingerprint is indexed; the fault
/// path never re-derives a pattern.
///
/// Key observation: `Fingerprint::literals` is an order-preserving
/// projection of the atoms, so the literal sequence of *any* truncated
/// prefix is itself a prefix of the full literal sequence, and a centred
/// literal window is a contiguous slice of it. Per occurrence of each API
/// it therefore suffices to record how many literals precede it and
/// whether the occurrence itself is a literal.
#[derive(Debug, Clone)]
struct FpPatterns {
    /// Full atom API sequence (strict / correlation matching).
    apis: Vec<ApiId>,
    /// Literal sequences: `[0]` with RPC symbols kept, `[1]` with RPCs
    /// pruned (§6).
    lits: [Vec<ApiId>; 2],
    /// Per API appearing in the fingerprint: one entry per occurrence, in
    /// atom order (the order `truncate_at_each` visits).
    occ: HashMap<ApiId, Vec<OccEntry>>,
}

#[derive(Debug, Clone, Copy)]
struct OccEntry {
    /// Atom index of the occurrence.
    pos: usize,
    /// Literal count strictly before the occurrence (`[kept, pruned]`).
    before: [usize; 2],
    /// Whether the occurrence itself is a literal (`[kept, pruned]`).
    literal: [bool; 2],
}

impl FpPatterns {
    fn build(catalog: &Catalog, fp: &Fingerprint) -> FpPatterns {
        let mut apis = Vec::with_capacity(fp.atoms.len());
        let mut lits = [Vec::new(), Vec::new()];
        let mut occ: HashMap<ApiId, Vec<OccEntry>> = HashMap::new();
        for (pos, a) in fp.atoms.iter().enumerate() {
            apis.push(a.api);
            let keep_all = !a.starred;
            let keep_pruned = keep_all && !catalog.get(a.api).is_rpc();
            occ.entry(a.api).or_default().push(OccEntry {
                pos,
                before: [lits[0].len(), lits[1].len()],
                literal: [keep_all, keep_pruned],
            });
            if keep_all {
                lits[0].push(a.api);
            }
            if keep_pruned {
                lits[1].push(a.api);
            }
        }
        FpPatterns { apis, lits, occ }
    }
}

/// One candidate pattern for a fault, borrowed from the library's pattern
/// cache — the fast-path replacement for cloning truncated
/// [`Fingerprint`]s per fault.
#[derive(Debug, Clone, Copy)]
pub struct CandidatePattern<'a> {
    /// The candidate operation.
    pub op: OpSpecId,
    /// (Truncated) atom sequence — for strict and correlation matching.
    pub apis: &'a [ApiId],
    /// (Truncated) literal sequence with RPC symbols kept.
    pub lits_all: &'a [ApiId],
    /// (Truncated) literal sequence with RPC symbols pruned (§6).
    pub lits_pruned: &'a [ApiId],
}

impl<'a> CandidatePattern<'a> {
    /// The literal pattern under the detector's pruning flag.
    pub fn literals(&self, prune_rpcs: bool) -> &'a [ApiId] {
        if prune_rpcs {
            self.lits_pruned
        } else {
            self.lits_all
        }
    }
}

/// The library of all learned fingerprints, indexed for candidate lookup.
#[derive(Debug, Clone)]
pub struct FingerprintLibrary {
    catalog: Arc<Catalog>,
    fps: Vec<Fingerprint>,
    by_api: HashMap<ApiId, Vec<OpSpecId>>,
    fp_max: usize,
    /// Pattern cache, parallel to `fps`.
    cache: Vec<FpPatterns>,
}

impl FingerprintLibrary {
    /// Build from per-operation trace sets.
    pub fn from_traces(
        catalog: Arc<Catalog>,
        traces: Vec<(OpSpecId, Vec<Vec<ApiId>>)>,
    ) -> FingerprintLibrary {
        let mut fps = Vec::with_capacity(traces.len());
        for (i, (op, trace_set)) in traces.into_iter().enumerate() {
            assert_eq!(op.index(), i, "fingerprints must be supplied in dense id order");
            fps.push(generate_fingerprint(&catalog, op, &trace_set));
        }
        Self::index(catalog, fps)
    }

    fn index(catalog: Arc<Catalog>, fps: Vec<Fingerprint>) -> FingerprintLibrary {
        let mut lib = FingerprintLibrary {
            catalog,
            fps: Vec::with_capacity(fps.len()),
            by_api: HashMap::new(),
            fp_max: 0,
            cache: Vec::with_capacity(fps.len()),
        };
        for fp in fps {
            lib.index_one(fp);
        }
        lib
    }

    /// Register one fingerprint: candidate index, `FPmax`, pattern cache.
    /// Shared by the batch constructors and [`Self::extend_characterize`].
    fn index_one(&mut self, fp: Fingerprint) {
        self.fp_max = self.fp_max.max(fp.len());
        let mut seen = std::collections::HashSet::new();
        for a in &fp.atoms {
            if seen.insert(a.api) {
                self.by_api.entry(a.api).or_default().push(fp.op);
            }
        }
        self.cache.push(FpPatterns::build(&self.catalog, &fp));
        self.fps.push(fp);
    }

    /// Offline characterization (§7.1): execute every spec `runs` times in
    /// isolation on `deployment` (noise enabled — the filter must earn its
    /// keep) and learn its fingerprint. Returns the library plus the raw
    /// event counts per operation (for Table 1's Events columns).
    pub fn characterize(
        catalog: Arc<Catalog>,
        specs: &[OperationSpec],
        deployment: &Deployment,
        runs: usize,
        seed: u64,
    ) -> (FingerprintLibrary, Vec<CharacterizationStats>) {
        assert!(runs >= 1);
        let mut all_traces = Vec::with_capacity(specs.len());
        let mut stats = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(spec.id.index(), i, "specs must be in dense id order");
            let (traces, st) = Self::run_spec_traces(&catalog, deployment, spec, runs, |r| {
                seed ^ ((i as u64) << 20) ^ r as u64
            });
            stats.push(st);
            all_traces.push((spec.id, traces));
        }
        (Self::from_traces(catalog, all_traces), stats)
    }

    /// [`Self::characterize`] sharded across `threads` scoped workers.
    /// Each spec's simulator seeds depend only on its index, and
    /// fingerprint generation is a pure function of the traces, so the
    /// result is identical to the sequential build regardless of how the
    /// scheduler interleaves workers (asserted in tests).
    pub fn characterize_parallel(
        catalog: Arc<Catalog>,
        specs: &[OperationSpec],
        deployment: &Deployment,
        runs: usize,
        seed: u64,
        threads: usize,
    ) -> (FingerprintLibrary, Vec<CharacterizationStats>) {
        assert!(runs >= 1);
        let threads = threads.max(1).min(specs.len().max(1));
        if threads <= 1 {
            return Self::characterize(catalog, specs, deployment, runs, seed);
        }
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(spec.id.index(), i, "specs must be in dense id order");
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let done: std::sync::Mutex<Vec<(usize, Fingerprint, CharacterizationStats)>> =
            std::sync::Mutex::new(Vec::with_capacity(specs.len()));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= specs.len() {
                            break;
                        }
                        let spec = &specs[i];
                        let (traces, st) =
                            Self::run_spec_traces(&catalog, deployment, spec, runs, |r| {
                                seed ^ ((i as u64) << 20) ^ r as u64
                            });
                        local.push((i, generate_fingerprint(&catalog, spec.id, &traces), st));
                    }
                    done.lock().unwrap().extend(local);
                });
            }
        });
        let mut done = done.into_inner().unwrap();
        done.sort_by_key(|&(i, ..)| i);
        let mut fps = Vec::with_capacity(done.len());
        let mut stats = Vec::with_capacity(done.len());
        for (_, fp, st) in done {
            fps.push(fp);
            stats.push(st);
        }
        (Self::index(catalog, fps), stats)
    }

    /// Execute one spec `runs` times in isolation; the traces plus the
    /// raw event counts. `run_seed(r)` is the simulator seed of run `r`.
    fn run_spec_traces(
        catalog: &Arc<Catalog>,
        deployment: &Deployment,
        spec: &OperationSpec,
        runs: usize,
        run_seed: impl Fn(usize) -> u64,
    ) -> (Vec<Vec<ApiId>>, CharacterizationStats) {
        let plan = FaultPlan::none();
        let mut traces = Vec::with_capacity(runs);
        let mut rest_events = 0usize;
        let mut rpc_events = 0usize;
        for r in 0..runs {
            let cfg = RunConfig { seed: run_seed(r), start_window: 0, ..RunConfig::default() };
            let exec = Runner::new(catalog.clone(), deployment, &plan, cfg).run(&[spec]);
            traces.push(trace_of(&exec));
            for m in &exec.messages {
                if m.wire.is_rpc() {
                    rpc_events += 1;
                } else {
                    rest_events += 1;
                }
            }
        }
        (traces, CharacterizationStats { op: spec.id, rest_events, rpc_events })
    }

    /// Incrementally learn fingerprints for newly introduced operations
    /// (paper Limitation 7: "Enhancements to OpenStack or its APIs require
    /// building additional fingerprints for the newly introduced
    /// operations" — no full retraining needed). `specs` must continue the
    /// dense id space.
    pub fn extend_characterize(
        &mut self,
        specs: &[OperationSpec],
        deployment: &Deployment,
        runs: usize,
        seed: u64,
    ) -> Vec<CharacterizationStats> {
        assert!(runs >= 1);
        let mut stats = Vec::with_capacity(specs.len());
        for (j, spec) in specs.iter().enumerate() {
            assert_eq!(
                spec.id.index(),
                self.fps.len(),
                "new specs must continue the dense id space"
            );
            let (traces, st) = Self::run_spec_traces(&self.catalog, deployment, spec, runs, |r| {
                seed ^ ((j as u64) << 24) ^ r as u64
            });
            let fp = generate_fingerprint(&self.catalog, spec.id, &traces);
            self.index_one(fp);
            stats.push(st);
        }
        stats
    }

    /// The fingerprint of `op`.
    pub fn get(&self, op: OpSpecId) -> &Fingerprint {
        &self.fps[op.index()]
    }

    /// All fingerprints.
    pub fn iter(&self) -> impl Iterator<Item = &Fingerprint> {
        self.fps.iter()
    }

    /// Number of fingerprints (the `N` in θ).
    pub fn len(&self) -> usize {
        self.fps.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.fps.is_empty()
    }

    /// Operations whose fingerprint contains `api`
    /// (`Get_Possible_Offending_Operations`).
    pub fn candidates(&self, api: ApiId) -> &[OpSpecId] {
        self.by_api.get(&api).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Candidate patterns for an offending API, borrowed from the pattern
    /// cache: one entry per candidate operation and truncation point (the
    /// occurrences of `offending` in its fingerprint, in atom order), or
    /// one untruncated entry per candidate when `truncate` is false. Same
    /// order and content as deriving `candidates()` × `truncate_at_each()`
    /// × `literals()`/`api_seq()` fresh, without the per-fault allocation.
    pub fn candidate_patterns(
        &self,
        offending: ApiId,
        truncate: bool,
    ) -> Vec<CandidatePattern<'_>> {
        let candidates = self.candidates(offending);
        let mut out = Vec::with_capacity(candidates.len());
        for &op in candidates {
            let pats = &self.cache[op.index()];
            if truncate {
                for e in pats.occ.get(&offending).map(Vec::as_slice).unwrap_or(&[]) {
                    out.push(CandidatePattern {
                        op,
                        apis: &pats.apis[..=e.pos],
                        lits_all: &pats.lits[0][..e.before[0] + e.literal[0] as usize],
                        lits_pruned: &pats.lits[1][..e.before[1] + e.literal[1] as usize],
                    });
                }
            } else {
                out.push(CandidatePattern {
                    op,
                    apis: &pats.apis,
                    lits_all: &pats.lits[0],
                    lits_pruned: &pats.lits[1],
                });
            }
        }
        out
    }

    /// Cached full literal sequence of `op`
    /// (= `get(op).literals(catalog, prune_rpcs)`).
    pub fn literal_seq(&self, op: OpSpecId, prune_rpcs: bool) -> &[ApiId] {
        &self.cache[op.index()].lits[prune_rpcs as usize]
    }

    /// Cached bounded literal windows centred on each occurrence of `api`
    /// in `op`'s fingerprint — equal to
    /// `get(op).centered_literals(catalog, false, api, k)` (the
    /// performance-fault pattern; RPC symbols kept, §3.1.2). Each window
    /// is a contiguous slice of the cached literal sequence.
    pub fn centered_patterns(&self, op: OpSpecId, api: ApiId, k: usize) -> Vec<&[ApiId]> {
        let pats = &self.cache[op.index()];
        let Some(occ) = pats.occ.get(&api) else {
            return Vec::new();
        };
        let half = (k / 2).max(1);
        let lits = &pats.lits[0];
        occ.iter()
            .map(|e| {
                let lo = e.before[0].saturating_sub(half);
                let hi = e.before[0]
                    .saturating_add(e.literal[0] as usize)
                    .saturating_add(half)
                    .min(lits.len());
                &lits[lo..hi]
            })
            .collect()
    }

    /// Size of the largest fingerprint (the `FPmax` in α).
    pub fn fp_max(&self) -> usize {
        self.fp_max
    }

    /// The catalog fingerprints refer into.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Serialize the learned fingerprints to JSON. The catalog itself is
    /// not serialized — it is a deterministic build
    /// ([`Catalog::openstack`]) and the API ids in the fingerprints refer
    /// into it — so characterization can run once and ship its artifact to
    /// every analyzer instance (the paper: fingerprint generation "is an
    /// offline process … independent of the scale of the deployment").
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.fps).expect("fingerprints serialize")
    }

    /// Load fingerprints produced by [`FingerprintLibrary::to_json`]
    /// against a catalog. Fails on malformed JSON, non-dense operation
    /// ids, or API ids outside the catalog.
    pub fn from_json(catalog: Arc<Catalog>, json: &str) -> Result<FingerprintLibrary, String> {
        let fps: Vec<Fingerprint> =
            serde_json::from_str(json).map_err(|e| format!("bad fingerprint JSON: {e}"))?;
        for (i, fp) in fps.iter().enumerate() {
            if fp.op.index() != i {
                return Err(format!("fingerprint {i} has id {} (must be dense)", fp.op));
            }
            for atom in &fp.atoms {
                if atom.api.index() >= catalog.len() {
                    return Err(format!("fingerprint {i}: unknown API {}", atom.api));
                }
            }
        }
        Ok(Self::index(catalog, fps))
    }

    /// Serialize the fingerprints to the compact binary snapshot format
    /// the durable store persists (`u32 n | per fingerprint: u16 op,
    /// u32 n_atoms, per atom: u16 api, u8 starred`). Like
    /// [`FingerprintLibrary::to_json`] the catalog is not serialized;
    /// unlike JSON the encoding is byte-stable, so "library unchanged"
    /// is exactly "snapshot bytes equal" — which is what the hot-reload
    /// machinery compares.
    pub fn to_snapshot(&self) -> Vec<u8> {
        use crate::checkpoint::codec::{put_u16, put_u32, put_u8};
        let mut out = Vec::new();
        put_u32(&mut out, self.fps.len() as u32);
        for fp in &self.fps {
            put_u16(&mut out, fp.op.0);
            put_u32(&mut out, fp.atoms.len() as u32);
            for atom in &fp.atoms {
                put_u16(&mut out, atom.api.0);
                put_u8(&mut out, atom.starred as u8);
            }
        }
        out
    }

    /// Load a snapshot produced by [`FingerprintLibrary::to_snapshot`]
    /// against a catalog. Fails on truncated bytes, non-dense operation
    /// ids, API ids outside the catalog, or trailing garbage — the same
    /// contract as [`FingerprintLibrary::from_json`].
    pub fn from_snapshot(
        catalog: Arc<Catalog>,
        bytes: &[u8],
    ) -> Result<FingerprintLibrary, CheckpointError> {
        use crate::checkpoint::codec::Reader;
        let mut r = Reader::new(bytes);
        let n = r.u32()? as usize;
        let mut fps = Vec::with_capacity(n.min(4096));
        for i in 0..n {
            let op = OpSpecId(r.u16()?);
            if op.index() != i {
                return Err(CheckpointError::Invalid("snapshot op ids must be dense"));
            }
            let n_atoms = r.u32()? as usize;
            let mut atoms = Vec::with_capacity(n_atoms.min(4096));
            for _ in 0..n_atoms {
                let api = ApiId(r.u16()?);
                if api.index() >= catalog.len() {
                    return Err(CheckpointError::Invalid("snapshot API outside catalog"));
                }
                let starred = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(CheckpointError::Invalid("snapshot starred flag")),
                };
                atoms.push(Atom { api, starred });
            }
            fps.push(Fingerprint { op, atoms });
        }
        r.done()?;
        Ok(Self::index(catalog, fps))
    }
}

/// Raw event counts observed while characterizing one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CharacterizationStats {
    /// The operation.
    pub op: OpSpecId,
    /// REST messages captured across all characterization runs.
    pub rest_events: usize,
    /// RPC messages captured across all characterization runs.
    pub rpc_events: usize,
}

/// Extract the invocation trace (API id per request message, in order)
/// from an execution.
pub fn trace_of(exec: &Execution) -> Vec<ApiId> {
    exec.messages
        .iter()
        .filter(|m| m.direction == gretel_model::Direction::Request)
        .map(|m| m.api)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gretel_model::{HttpMethod, Service, Workflows};

    fn setup() -> (Arc<Catalog>, Workflows, Deployment) {
        let cat = Catalog::openstack();
        let wf = Workflows::new(cat.clone());
        (cat.clone(), wf, Deployment::standard())
    }

    #[test]
    fn vm_create_fingerprint_matches_spec_and_stars_gets() {
        let (cat, wf, dep) = setup();
        let spec = wf.vm_create_spec(OpSpecId(0));
        let (lib, stats) =
            FingerprintLibrary::characterize(cat.clone(), std::slice::from_ref(&spec), &dep, 3, 7);
        let fp = lib.get(OpSpecId(0));
        // Noise filtered, all real steps survive (no repeated GETs in the
        // canonical flow).
        assert_eq!(fp.api_seq(), spec.api_seq());
        // GETs starred, POST/PUT/RPCs literal.
        for atom in &fp.atoms {
            assert_eq!(atom.starred, !cat.get(atom.api).is_state_change());
        }
        assert!(stats[0].rest_events > 0);
        assert!(stats[0].rpc_events > 0);
    }

    #[test]
    fn noise_never_survives_into_fingerprints() {
        let (cat, wf, dep) = setup();
        let specs = vec![wf.vm_create_spec(OpSpecId(0)), wf.image_upload_spec(OpSpecId(1))];
        let (lib, _) = FingerprintLibrary::characterize(cat.clone(), &specs, &dep, 3, 9);
        for fp in lib.iter() {
            for atom in &fp.atoms {
                assert!(!cat.is_noise(atom.api));
            }
        }
    }

    #[test]
    fn truncation_keeps_prefix_through_last_occurrence() {
        let (cat, ..) = setup();
        let post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        let get = cat.rest_expect(Service::Neutron, HttpMethod::Get, "/v2.0/networks.json");
        let fp = Fingerprint {
            op: OpSpecId(0),
            atoms: vec![
                Atom { api: get, starred: true },
                Atom { api: post, starred: false },
                Atom { api: get, starred: true },
                Atom { api: post, starred: false },
                Atom { api: get, starred: true },
            ],
        };
        let t = fp.truncate_at_last(post).unwrap();
        assert_eq!(t.len(), 4, "prefix through the LAST occurrence, inclusive");
        assert_eq!(t.atoms.last().unwrap().api, post);
        assert!(fp.truncate_at_last(ApiId(9999)).is_none());
    }

    #[test]
    fn literals_respect_rpc_pruning() {
        let (cat, wf, dep) = setup();
        let spec = wf.vm_create_spec(OpSpecId(0));
        let (lib, _) = FingerprintLibrary::characterize(cat.clone(), &[spec], &dep, 2, 1);
        let fp = lib.get(OpSpecId(0));
        let with_rpc = fp.literals(&cat, false);
        let without = fp.literals(&cat, true);
        assert!(with_rpc.len() > without.len());
        assert!(without.iter().all(|&a| !cat.get(a).is_rpc()));
    }

    #[test]
    fn candidates_index_covers_every_atom() {
        let (cat, wf, dep) = setup();
        let specs = vec![wf.vm_create_spec(OpSpecId(0)), wf.cinder_list_spec(OpSpecId(1))];
        let (lib, _) = FingerprintLibrary::characterize(cat, &specs, &dep, 2, 3);
        for fp in lib.iter() {
            for atom in &fp.atoms {
                assert!(lib.candidates(atom.api).contains(&fp.op));
            }
        }
        assert!(lib.candidates(ApiId(9999)).is_empty());
    }

    /// A spec with repeated GETs so the noise filter has something to do.
    fn vm_snapshot_specish(wf: &Workflows) -> OperationSpec {
        OperationSpec {
            id: OpSpecId(0),
            name: "test.vm_snapshot_like".into(),
            category: gretel_model::Category::Compute,
            steps: {
                let mut steps = wf.vm_create();
                steps.extend(wf.vm_snapshot());
                steps
            },
        }
    }

    #[test]
    fn fingerprint_is_subsequence_of_every_filtered_trace() {
        let (cat, wf, dep) = setup();
        let spec = vm_snapshot_specish(&wf);
        let plan = FaultPlan::none();
        let mut traces = Vec::new();
        for r in 0..4 {
            let cfg = RunConfig { seed: r, start_window: 0, ..RunConfig::default() };
            let exec = Runner::new(cat.clone(), &dep, &plan, cfg).run(&[&spec]);
            traces.push(trace_of(&exec));
        }
        let fp = generate_fingerprint(&cat, OpSpecId(0), &traces);
        for t in &traces {
            let filtered = crate::noise_filter::filter_noise(&cat, t);
            assert!(
                crate::lcs::is_subsequence(&fp.api_seq(), &filtered),
                "fingerprint must embed in every filtered trace"
            );
        }
    }

    #[test]
    fn regex_string_has_stars_on_reads() {
        let (cat, wf, dep) = setup();
        let (lib, _) =
            FingerprintLibrary::characterize(cat, &[wf.vm_create_spec(OpSpecId(0))], &dep, 2, 5);
        let s = lib.get(OpSpecId(0)).regex_string();
        assert!(s.contains('*'));
        assert!(s.chars().count() > lib.get(OpSpecId(0)).len());
    }

    #[test]
    fn extend_characterize_adds_new_operations_incrementally() {
        let (cat, wf, dep) = setup();
        let initial = vec![wf.vm_create_spec(OpSpecId(0))];
        let (mut lib, _) = FingerprintLibrary::characterize(cat.clone(), &initial, &dep, 2, 3);
        assert_eq!(lib.len(), 1);

        // A new operation ships with the next OpenStack release.
        let new_spec = {
            let mut s = wf.image_upload_spec(OpSpecId(1));
            s.name = "image.upload.newly_added".into();
            s
        };
        let stats = lib.extend_characterize(std::slice::from_ref(&new_spec), &dep, 2, 9);
        assert_eq!(lib.len(), 2);
        assert_eq!(stats.len(), 1);
        // The new fingerprint is indexed: its APIs resolve candidates.
        let fp = lib.get(OpSpecId(1)).clone();
        assert!(!fp.is_empty());
        for atom in &fp.atoms {
            assert!(lib.candidates(atom.api).contains(&OpSpecId(1)));
        }
        // And the incremental result equals a from-scratch build.
        let both = vec![initial[0].clone(), new_spec];
        let (fresh, _) = FingerprintLibrary::characterize(cat, &both, &dep, 2, 9);
        assert_eq!(fresh.get(OpSpecId(1)).api_seq(), fp.api_seq());
    }

    #[test]
    #[should_panic(expected = "dense id space")]
    fn extend_rejects_id_gaps() {
        let (cat, wf, dep) = setup();
        let initial = vec![wf.vm_create_spec(OpSpecId(0))];
        let (mut lib, _) = FingerprintLibrary::characterize(cat, &initial, &dep, 1, 3);
        let bad = wf.cinder_list_spec(OpSpecId(5));
        lib.extend_characterize(&[bad], &dep, 1, 3);
    }

    #[test]
    fn library_round_trips_through_json() {
        let (cat, wf, dep) = setup();
        let specs = vec![wf.vm_create_spec(OpSpecId(0)), wf.cinder_list_spec(OpSpecId(1))];
        let (lib, _) = FingerprintLibrary::characterize(cat.clone(), &specs, &dep, 2, 3);
        let json = lib.to_json();
        let restored = FingerprintLibrary::from_json(cat, &json).expect("round trip");
        assert_eq!(restored.len(), lib.len());
        assert_eq!(restored.fp_max(), lib.fp_max());
        for i in 0..lib.len() {
            let op = OpSpecId(i as u16);
            assert_eq!(restored.get(op), lib.get(op));
        }
    }

    #[test]
    fn from_json_rejects_garbage() {
        let (cat, ..) = setup();
        assert!(FingerprintLibrary::from_json(cat.clone(), "not json").is_err());
        // Non-dense ids.
        let fp = Fingerprint { op: OpSpecId(5), atoms: vec![] };
        let json = serde_json::to_string(&vec![fp]).unwrap();
        assert!(FingerprintLibrary::from_json(cat.clone(), &json)
            .unwrap_err()
            .contains("dense"));
        // Unknown API id.
        let fp = Fingerprint {
            op: OpSpecId(0),
            atoms: vec![Atom { api: ApiId(u16::MAX), starred: false }],
        };
        let json = serde_json::to_string(&vec![fp]).unwrap();
        assert!(FingerprintLibrary::from_json(cat, &json).unwrap_err().contains("unknown API"));
    }

    #[test]
    fn fp_max_tracks_largest() {
        let (cat, wf, dep) = setup();
        let specs = vec![wf.vm_create_spec(OpSpecId(0)), wf.cinder_list_spec(OpSpecId(1))];
        let (lib, _) = FingerprintLibrary::characterize(cat, &specs, &dep, 2, 3);
        assert_eq!(lib.fp_max(), lib.iter().map(|f| f.len()).max().unwrap());
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn candidate_patterns_equal_fresh_derivation() {
        let (cat, wf, dep) = setup();
        let specs = vec![
            wf.vm_create_spec(OpSpecId(0)),
            wf.image_upload_spec(OpSpecId(1)),
            wf.cinder_list_spec(OpSpecId(2)),
        ];
        let (lib, _) = FingerprintLibrary::characterize(cat.clone(), &specs, &dep, 2, 7);
        for api_idx in 0..cat.len() {
            let api = ApiId(api_idx as u16);
            for truncate in [true, false] {
                let cached = lib.candidate_patterns(api, truncate);
                // The seed derivation the cache replaces (the oracle).
                let mut fresh: Vec<(OpSpecId, Vec<ApiId>, Vec<ApiId>, Vec<ApiId>)> = Vec::new();
                for &op in lib.candidates(api) {
                    let fp = lib.get(op);
                    let truncs =
                        if truncate { fp.truncate_at_each(api) } else { vec![fp.clone()] };
                    for t in truncs {
                        fresh.push((
                            op,
                            t.api_seq(),
                            t.literals(&cat, false),
                            t.literals(&cat, true),
                        ));
                    }
                }
                assert_eq!(cached.len(), fresh.len(), "api {api} truncate {truncate}");
                for (c, f) in cached.iter().zip(&fresh) {
                    assert_eq!(c.op, f.0);
                    assert_eq!(c.apis, &f.1[..]);
                    assert_eq!(c.lits_all, &f.2[..]);
                    assert_eq!(c.lits_pruned, &f.3[..]);
                }
            }
        }
    }

    #[test]
    fn centered_patterns_equal_fresh_derivation() {
        let (cat, wf, dep) = setup();
        let specs = vec![wf.vm_create_spec(OpSpecId(0)), wf.image_upload_spec(OpSpecId(1))];
        let (lib, _) = FingerprintLibrary::characterize(cat.clone(), &specs, &dep, 2, 5);
        for op_i in 0..lib.len() {
            let op = OpSpecId(op_i as u16);
            let fp = lib.get(op).clone();
            let apis: std::collections::HashSet<ApiId> =
                fp.atoms.iter().map(|a| a.api).collect();
            for api in apis {
                for k in [1usize, 2, 4, 9, usize::MAX] {
                    let cached = lib.centered_patterns(op, api, k);
                    let fresh = fp.centered_literals(&cat, false, api, k);
                    assert_eq!(cached.len(), fresh.len());
                    for (c, f) in cached.iter().zip(&fresh) {
                        assert_eq!(*c, &f[..], "op {op} api {api} k {k}");
                    }
                }
            }
        }
        // An API absent from the fingerprint yields no patterns.
        assert!(lib.centered_patterns(OpSpecId(0), ApiId(9999), 4).is_empty());
    }

    #[test]
    fn literal_seq_and_literals_iter_agree() {
        let (cat, wf, dep) = setup();
        let (lib, _) = FingerprintLibrary::characterize(
            cat.clone(),
            &[wf.vm_create_spec(OpSpecId(0))],
            &dep,
            2,
            3,
        );
        let fp = lib.get(OpSpecId(0));
        for prune in [false, true] {
            assert_eq!(lib.literal_seq(OpSpecId(0), prune), &fp.literals(&cat, prune)[..]);
            assert_eq!(
                fp.literals_iter(&cat, prune).collect::<Vec<_>>(),
                fp.literals(&cat, prune)
            );
        }
    }

    #[test]
    fn parallel_characterize_is_byte_identical() {
        let (cat, wf, dep) = setup();
        let specs = vec![
            wf.vm_create_spec(OpSpecId(0)),
            wf.image_upload_spec(OpSpecId(1)),
            wf.cinder_list_spec(OpSpecId(2)),
        ];
        let (seq, seq_stats) = FingerprintLibrary::characterize(cat.clone(), &specs, &dep, 2, 11);
        for threads in [2usize, 4, 8] {
            let (par, par_stats) = FingerprintLibrary::characterize_parallel(
                cat.clone(),
                &specs,
                &dep,
                2,
                11,
                threads,
            );
            assert_eq!(par.to_json(), seq.to_json(), "threads={threads}");
            assert_eq!(par_stats, seq_stats);
            assert_eq!(par.fp_max(), seq.fp_max());
        }
    }

    #[test]
    fn pattern_cache_tracks_extend_characterize() {
        let (cat, wf, dep) = setup();
        let (mut lib, _) = FingerprintLibrary::characterize(
            cat.clone(),
            &[wf.vm_create_spec(OpSpecId(0))],
            &dep,
            2,
            3,
        );
        lib.extend_characterize(&[wf.image_upload_spec(OpSpecId(1))], &dep, 2, 9);
        let fp = lib.get(OpSpecId(1)).clone();
        let api = fp.atoms.iter().find(|a| !a.starred).map(|a| a.api).expect("literal atom");
        let pats = lib.candidate_patterns(api, true);
        let hits: Vec<_> = pats.iter().filter(|p| p.op == OpSpecId(1)).collect();
        assert_eq!(hits.len(), fp.truncate_at_each(api).len());
        for p in &hits {
            assert!(fp.literals(&cat, true).starts_with(p.lits_pruned));
            assert!(fp.literals(&cat, false).starts_with(p.lits_all));
        }
    }
}

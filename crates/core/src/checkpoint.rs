//! Checkpointing primitives for the fault-tolerant analyzer service.
//!
//! The recoverable service ([`crate::recover`]) periodically serializes the
//! analyzer's ingest state — sliding window, latency pairer, perf
//! detectors, error dedup set — together with the receiver-side
//! [`gretel_netcap::Resequencer`] positions into a [`Journal`]: an
//! append-only log of length-prefixed, checksummed records. After a crash
//! the service restores the newest *valid* record (corrupted records are
//! detected by checksum and skipped, never half-applied) and the agents
//! replay their streams from the beginning; the restored resequencers
//! discard the already-delivered prefix as duplicates, so the diagnosis
//! stream continues exactly where the checkpoint left it.
//!
//! Everything here is deliberately dependency-free hand-rolled little-endian
//! encoding: the journal must be readable by a *different* build of the
//! service than the one that wrote it, so the format is explicit rather
//! than derived.

use crate::event::{Event, FaultMark};
use gretel_model::{ApiId, Direction, MessageId, NodeId};

/// Why a checkpoint could not be restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// The record ended before a field was complete.
    Truncated,
    /// A field decoded to an impossible value (the message names it).
    Invalid(&'static str),
    /// A perf detector in the monitor does not implement state export, so
    /// the analyzer cannot be checkpointed at all.
    UnsupportedDetector,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint record truncated"),
            CheckpointError::Invalid(what) => write!(f, "invalid checkpoint field: {what}"),
            CheckpointError::UnsupportedDetector => {
                write!(f, "a perf detector does not support state export")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Little-endian primitives shared by every state codec in the crate.
pub(crate) mod codec {
    use super::CheckpointError;

    pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
        out.push(v);
    }
    pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Bounds-checked sequential reader over a state buffer. `Clone` marks
    /// a position so a block can be skipped now and decoded later.
    #[derive(Clone)]
    pub(crate) struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
            Reader { buf, pos: 0 }
        }

        fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
            if self.buf.len() - self.pos < n {
                return Err(CheckpointError::Truncated);
            }
            let s = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }

        pub(crate) fn u8(&mut self) -> Result<u8, CheckpointError> {
            Ok(self.take(1)?[0])
        }
        pub(crate) fn u16(&mut self) -> Result<u16, CheckpointError> {
            Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
        }
        pub(crate) fn u32(&mut self) -> Result<u32, CheckpointError> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
        }
        pub(crate) fn u64(&mut self) -> Result<u64, CheckpointError> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
        }
        pub(crate) fn f64(&mut self) -> Result<f64, CheckpointError> {
            Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
        }

        /// A length-prefixed byte run (u32 length).
        pub(crate) fn bytes(&mut self) -> Result<&'a [u8], CheckpointError> {
            let n = self.u32()? as usize;
            self.take(n)
        }

        /// Items remaining? Call at the end of a full decode to reject
        /// trailing garbage.
        pub(crate) fn done(&self) -> Result<(), CheckpointError> {
            if self.pos == self.buf.len() {
                Ok(())
            } else {
                Err(CheckpointError::Invalid("trailing bytes"))
            }
        }
    }
}

use codec::{put_u16, put_u32, put_u64, put_u8, Reader};

/// Encode one [`Event`] (fixed layout, 36 bytes).
pub(crate) fn put_event(out: &mut Vec<u8>, ev: &Event) {
    put_u64(out, ev.id.0);
    put_u64(out, ev.ts);
    put_u16(out, ev.api.0);
    put_u8(out, matches!(ev.direction, Direction::Response) as u8);
    let flags =
        (ev.is_rpc as u8) | ((ev.state_change as u8) << 1) | ((ev.noise_api as u8) << 2);
    put_u8(out, flags);
    put_u8(out, ev.src_node.0);
    put_u8(out, ev.dst_node.0);
    match ev.corr {
        Some(c) => {
            put_u8(out, 1);
            put_u64(out, c);
        }
        None => {
            put_u8(out, 0);
            put_u64(out, 0);
        }
    }
    let (tag, status) = match ev.fault {
        FaultMark::None => (0u8, 0u16),
        FaultMark::RestError(s) => (1, s),
        FaultMark::RpcError => (2, 0),
    };
    put_u8(out, tag);
    put_u16(out, status);
    put_u32(out, ev.gap_before);
}

/// Decode one [`Event`] written by [`put_event`].
pub(crate) fn read_event(r: &mut Reader<'_>) -> Result<Event, CheckpointError> {
    let id = MessageId(r.u64()?);
    let ts = r.u64()?;
    let api = ApiId(r.u16()?);
    let direction = match r.u8()? {
        0 => Direction::Request,
        1 => Direction::Response,
        _ => return Err(CheckpointError::Invalid("event direction")),
    };
    let flags = r.u8()?;
    if flags > 0b111 {
        return Err(CheckpointError::Invalid("event flags"));
    }
    let src_node = NodeId(r.u8()?);
    let dst_node = NodeId(r.u8()?);
    let corr_tag = r.u8()?;
    let corr_val = r.u64()?;
    let corr = match corr_tag {
        0 => None,
        1 => Some(corr_val),
        _ => return Err(CheckpointError::Invalid("event correlation tag")),
    };
    let fault_tag = r.u8()?;
    let status = r.u16()?;
    let fault = match fault_tag {
        0 => FaultMark::None,
        1 => FaultMark::RestError(status),
        2 => FaultMark::RpcError,
        _ => return Err(CheckpointError::Invalid("event fault tag")),
    };
    Ok(Event {
        id,
        ts,
        api,
        direction,
        is_rpc: flags & 1 != 0,
        state_change: flags & 2 != 0,
        noise_api: flags & 4 != 0,
        src_node,
        dst_node,
        corr,
        fault,
        gap_before: r.u32()?,
    })
}

/// FNV-1a 64-bit over a byte slice — the journal's record checksum. Not
/// cryptographic; it detects the corruption the chaos injector (and real
/// disks) produce: flipped or torn bytes inside a record.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-record header: u32 payload length, u64 FNV-1a checksum, u8 kind.
const RECORD_HEADER: usize = 4 + 8 + 1;

/// An append-only log of length-prefixed, checksummed records.
///
/// Records are `u32 len | u64 fnv1a(payload) | u8 kind | payload`. The
/// length prefix keeps the scan aligned even when a payload is corrupted,
/// so one bad record never takes down the records after it; the checksum
/// makes corruption detectable, so restore uses the newest record that
/// still verifies. A journal with no valid record restores nothing — the
/// service cold-starts, which is safe (just slower) because agents replay
/// their whole stream anyway.
///
/// ```
/// use gretel_core::Journal;
///
/// let mut j = Journal::new();
/// j.append(1, b"first");
/// j.append(1, b"second");
/// assert_eq!(j.latest_valid(1), Some(&b"second"[..]));
///
/// // Corrupt the newest record: restore falls back to the previous one.
/// j.corrupt_record(1, 0);
/// assert_eq!(j.latest_valid(1), Some(&b"first"[..]));
/// assert_eq!(j.record_counts(), (1, 1));
/// ```
#[derive(Debug, Default, Clone)]
pub struct Journal {
    buf: Vec<u8>,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// Rebuild from raw bytes (e.g. read back from disk). No validation
    /// happens here; corrupt records surface during [`Journal::latest_valid`].
    pub fn from_bytes(buf: Vec<u8>) -> Journal {
        Journal { buf }
    }

    /// The raw journal bytes (what would be persisted).
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Append one record.
    pub fn append(&mut self, kind: u8, payload: &[u8]) {
        self.buf.reserve(RECORD_HEADER + payload.len());
        self.buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&fnv1a(payload).to_le_bytes());
        self.buf.push(kind);
        self.buf.extend_from_slice(payload);
    }

    /// Walk all structurally complete records, oldest first, yielding
    /// `(kind, payload, checksum_ok)`.
    fn scan(&self) -> ScanIter<'_> {
        ScanIter { buf: &self.buf, pos: 0 }
    }

    /// The payload of the newest record of `kind` whose checksum verifies.
    pub fn latest_valid(&self, kind: u8) -> Option<&[u8]> {
        let mut best = None;
        for (k, payload, ok) in self.scan() {
            if ok && k == kind {
                best = Some(payload);
            }
        }
        best
    }

    /// `(valid, corrupt)` record counts across the whole journal.
    pub fn record_counts(&self) -> (usize, usize) {
        let mut valid = 0;
        let mut corrupt = 0;
        for (_, _, ok) in self.scan() {
            if ok {
                valid += 1;
            } else {
                corrupt += 1;
            }
        }
        (valid, corrupt)
    }

    /// Number of structurally complete records (valid or not).
    pub fn len(&self) -> usize {
        self.scan().count()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Chaos hook: flip one payload byte of record `index` (0-based, oldest
    /// first), leaving the length prefix intact so the scan stays aligned.
    /// Returns `false` when the record does not exist or has an empty
    /// payload. This is what [`crate::recover::AnalyzerChaos`] uses to model
    /// torn checkpoint writes.
    pub fn corrupt_record(&mut self, index: usize, byte: usize) -> bool {
        let mut pos = 0usize;
        let mut i = 0usize;
        while self.buf.len() - pos >= RECORD_HEADER {
            let len = u32::from_le_bytes(
                self.buf[pos..pos + 4].try_into().expect("len prefix"),
            ) as usize;
            let start = pos + RECORD_HEADER;
            let Some(end) = start.checked_add(len).filter(|&e| e <= self.buf.len()) else {
                return false;
            };
            if i == index {
                if len == 0 {
                    return false;
                }
                self.buf[start + byte % len] ^= 0x40;
                return true;
            }
            i += 1;
            pos = end;
        }
        false
    }
}

struct ScanIter<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Iterator for ScanIter<'a> {
    type Item = (u8, &'a [u8], bool);

    fn next(&mut self) -> Option<Self::Item> {
        if self.buf.len() - self.pos < RECORD_HEADER {
            return None;
        }
        let len = u32::from_le_bytes(
            self.buf[self.pos..self.pos + 4].try_into().expect("len prefix"),
        ) as usize;
        let sum = u64::from_le_bytes(
            self.buf[self.pos + 4..self.pos + 12].try_into().expect("checksum"),
        );
        let kind = self.buf[self.pos + 12];
        let start = self.pos + RECORD_HEADER;
        let end = start.checked_add(len).filter(|&e| e <= self.buf.len())?;
        let payload = &self.buf[start..end];
        self.pos = end;
        Some((kind, payload, fnv1a(payload) == sum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_round_trips_records_in_order() {
        let mut j = Journal::new();
        j.append(1, b"alpha");
        j.append(2, b"beta");
        j.append(1, b"gamma");
        assert_eq!(j.len(), 3);
        assert_eq!(j.record_counts(), (3, 0));
        assert_eq!(j.latest_valid(1), Some(&b"gamma"[..]));
        assert_eq!(j.latest_valid(2), Some(&b"beta"[..]));
        assert_eq!(j.latest_valid(9), None);

        // Survives a serialize/deserialize cycle.
        let j2 = Journal::from_bytes(j.bytes().to_vec());
        assert_eq!(j2.latest_valid(1), Some(&b"gamma"[..]));
    }

    #[test]
    fn corrupt_record_is_skipped_not_fatal() {
        let mut j = Journal::new();
        j.append(1, b"good-old");
        j.append(1, b"good-new");
        assert!(j.corrupt_record(1, 3));
        assert_eq!(j.record_counts(), (1, 1));
        // Restore falls back to the older valid record; records *after* a
        // corrupt one stay reachable thanks to the length prefix.
        assert_eq!(j.latest_valid(1), Some(&b"good-old"[..]));
        j.append(1, b"newest");
        assert_eq!(j.latest_valid(1), Some(&b"newest"[..]));
    }

    #[test]
    fn empty_and_truncated_journals_restore_nothing() {
        assert!(Journal::new().is_empty());
        assert_eq!(Journal::new().latest_valid(1), None);
        let mut j = Journal::new();
        j.append(1, b"payload");
        // Chop off the tail: the truncated record is not yielded at all.
        let cut = Journal::from_bytes(j.bytes()[..j.bytes().len() - 3].to_vec());
        assert_eq!(cut.latest_valid(1), None);
        assert!(cut.is_empty());
    }

    #[test]
    fn event_codec_round_trips_every_variant() {
        use gretel_model::Direction;
        let mk = |fault, corr, dir| Event {
            id: MessageId(77),
            ts: 123_456,
            api: ApiId(901),
            direction: dir,
            is_rpc: true,
            state_change: false,
            noise_api: true,
            src_node: NodeId(3),
            dst_node: NodeId(7),
            corr,
            fault,
            gap_before: 9,
        };
        for ev in [
            mk(FaultMark::None, None, Direction::Request),
            mk(FaultMark::RestError(503), Some(42), Direction::Response),
            mk(FaultMark::RpcError, None, Direction::Response),
        ] {
            let mut buf = Vec::new();
            put_event(&mut buf, &ev);
            let mut r = Reader::new(&buf);
            let back = read_event(&mut r).unwrap();
            r.done().unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn event_decode_rejects_bad_tags() {
        let ev = Event {
            id: MessageId(0),
            ts: 0,
            api: ApiId(0),
            direction: Direction::Request,
            is_rpc: false,
            state_change: false,
            noise_api: false,
            src_node: NodeId(0),
            dst_node: NodeId(0),
            corr: None,
            fault: FaultMark::None,
            gap_before: 0,
        };
        let mut buf = Vec::new();
        put_event(&mut buf, &ev);
        // Direction byte out of range.
        let mut bad = buf.clone();
        bad[18] = 9;
        assert!(read_event(&mut Reader::new(&bad)).is_err());
        // Fault tag out of range.
        let mut bad = buf.clone();
        bad[31] = 9;
        assert!(read_event(&mut Reader::new(&bad)).is_err());
        // Truncated.
        assert!(read_event(&mut Reader::new(&buf[..10])).is_err());
    }
}

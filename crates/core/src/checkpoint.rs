//! Checkpointing primitives for the fault-tolerant analyzer service.
//!
//! The recoverable service ([`crate::recover`]) periodically serializes the
//! analyzer's ingest state — sliding window, latency pairer, perf
//! detectors, error dedup set — together with the receiver-side
//! [`gretel_netcap::Resequencer`] positions into a [`gretel_store::Store`]:
//! an append-only log of length-prefixed, checksummed records. After a
//! crash the service restores the newest *valid* record (corrupted records
//! are detected by checksum and skipped, never half-applied) and the
//! agents replay their streams from the beginning; the restored
//! resequencers discard the already-delivered prefix as duplicates, so the
//! diagnosis stream continues exactly where the checkpoint left it.
//!
//! The [`Journal`] kept its PR 3 name and API but is now a thin veneer
//! over [`gretel_store::MemStore`]; the record format lives in
//! `gretel-store` so the [`gretel_store::FileStore`] backend can persist
//! the same log across whole-process restarts.
//!
//! Everything here is deliberately dependency-free hand-rolled little-endian
//! encoding: the journal must be readable by a *different* build of the
//! service than the one that wrote it, so the format is explicit rather
//! than derived.

use crate::event::{Event, FaultMark};
use crate::rca::{CauseKind, RootCause};
use crate::report::{CaptureConfidence, Diagnosis, FaultKind};
use gretel_model::{ApiId, Dependency, Direction, MessageId, NodeId, OpSpecId, Service};
use gretel_sim::ResourceKind;
use gretel_store::{MemStore, Store, StoreError};

/// Why a checkpoint could not be restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// The record ended before a field was complete.
    Truncated,
    /// A field decoded to an impossible value (the message names it).
    Invalid(&'static str),
    /// A perf detector in the monitor does not implement state export, so
    /// the analyzer cannot be checkpointed at all.
    UnsupportedDetector,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint record truncated"),
            CheckpointError::Invalid(what) => write!(f, "invalid checkpoint field: {what}"),
            CheckpointError::UnsupportedDetector => {
                write!(f, "a perf detector does not support state export")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Little-endian primitives shared by every state codec in the crate.
pub(crate) mod codec {
    use super::CheckpointError;

    pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
        out.push(v);
    }
    pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Bounds-checked sequential reader over a state buffer. `Clone` marks
    /// a position so a block can be skipped now and decoded later.
    #[derive(Clone)]
    pub(crate) struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
            Reader { buf, pos: 0 }
        }

        fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
            if self.buf.len() - self.pos < n {
                return Err(CheckpointError::Truncated);
            }
            let s = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }

        pub(crate) fn u8(&mut self) -> Result<u8, CheckpointError> {
            Ok(self.take(1)?[0])
        }
        pub(crate) fn u16(&mut self) -> Result<u16, CheckpointError> {
            Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
        }
        pub(crate) fn u32(&mut self) -> Result<u32, CheckpointError> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
        }
        pub(crate) fn u64(&mut self) -> Result<u64, CheckpointError> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
        }
        pub(crate) fn f64(&mut self) -> Result<f64, CheckpointError> {
            Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
        }

        /// A length-prefixed byte run (u32 length).
        pub(crate) fn bytes(&mut self) -> Result<&'a [u8], CheckpointError> {
            let n = self.u32()? as usize;
            self.take(n)
        }

        /// Items remaining? Call at the end of a full decode to reject
        /// trailing garbage.
        pub(crate) fn done(&self) -> Result<(), CheckpointError> {
            if self.pos == self.buf.len() {
                Ok(())
            } else {
                Err(CheckpointError::Invalid("trailing bytes"))
            }
        }
    }
}

use codec::{put_f64, put_u16, put_u32, put_u64, put_u8, Reader};

/// Encode one [`Event`] (fixed layout, 36 bytes).
pub(crate) fn put_event(out: &mut Vec<u8>, ev: &Event) {
    put_u64(out, ev.id.0);
    put_u64(out, ev.ts);
    put_u16(out, ev.api.0);
    put_u8(out, matches!(ev.direction, Direction::Response) as u8);
    let flags =
        (ev.is_rpc as u8) | ((ev.state_change as u8) << 1) | ((ev.noise_api as u8) << 2);
    put_u8(out, flags);
    put_u8(out, ev.src_node.0);
    put_u8(out, ev.dst_node.0);
    match ev.corr {
        Some(c) => {
            put_u8(out, 1);
            put_u64(out, c);
        }
        None => {
            put_u8(out, 0);
            put_u64(out, 0);
        }
    }
    let (tag, status) = match ev.fault {
        FaultMark::None => (0u8, 0u16),
        FaultMark::RestError(s) => (1, s),
        FaultMark::RpcError => (2, 0),
    };
    put_u8(out, tag);
    put_u16(out, status);
    put_u32(out, ev.gap_before);
}

/// Decode one [`Event`] written by [`put_event`].
pub(crate) fn read_event(r: &mut Reader<'_>) -> Result<Event, CheckpointError> {
    let id = MessageId(r.u64()?);
    let ts = r.u64()?;
    let api = ApiId(r.u16()?);
    let direction = match r.u8()? {
        0 => Direction::Request,
        1 => Direction::Response,
        _ => return Err(CheckpointError::Invalid("event direction")),
    };
    let flags = r.u8()?;
    if flags > 0b111 {
        return Err(CheckpointError::Invalid("event flags"));
    }
    let src_node = NodeId(r.u8()?);
    let dst_node = NodeId(r.u8()?);
    let corr_tag = r.u8()?;
    let corr_val = r.u64()?;
    let corr = match corr_tag {
        0 => None,
        1 => Some(corr_val),
        _ => return Err(CheckpointError::Invalid("event correlation tag")),
    };
    let fault_tag = r.u8()?;
    let status = r.u16()?;
    let fault = match fault_tag {
        0 => FaultMark::None,
        1 => FaultMark::RestError(status),
        2 => FaultMark::RpcError,
        _ => return Err(CheckpointError::Invalid("event fault tag")),
    };
    Ok(Event {
        id,
        ts,
        api,
        direction,
        is_rpc: flags & 1 != 0,
        state_change: flags & 2 != 0,
        noise_api: flags & 4 != 0,
        src_node,
        dst_node,
        corr,
        fault,
        gap_before: r.u32()?,
    })
}

/// FNV-1a 64-bit over a byte slice — the record checksum. Re-exported
/// from [`gretel_store`], which owns the record format.
pub use gretel_store::fnv1a;

/// An append-only log of length-prefixed, checksummed records, held in
/// memory — a veneer over [`gretel_store::MemStore`] that keeps the PR 3
/// name and call sites.
///
/// Records are `u32 len | u64 fnv1a(payload) | u8 kind | payload`. The
/// length prefix keeps the scan aligned even when a payload is corrupted,
/// so one bad record never takes down the records after it; the checksum
/// makes corruption detectable, so restore uses the newest record that
/// still verifies. A journal with no valid record restores nothing — the
/// service cold-starts, which is safe (just slower) because agents replay
/// their whole stream anyway.
///
/// [`Journal::append`] rejects payloads that do not fit the u32 length
/// prefix (or the bound set by [`Journal::with_max_record`]) with
/// [`StoreError::Oversized`] instead of silently truncating the prefix
/// and desynchronizing the scan.
///
/// ```
/// use gretel_core::Journal;
///
/// let mut j = Journal::new();
/// j.append(1, b"first").unwrap();
/// j.append(1, b"second").unwrap();
/// assert_eq!(j.latest_valid(1), Some(&b"second"[..]));
/// assert_eq!(j.record_counts(), (2, 0));
///
/// // Payloads that cannot fit the length prefix are rejected up front.
/// let mut small = gretel_core::Journal::with_max_record(4);
/// assert!(small.append(1, b"too long").is_err());
/// assert!(small.is_empty());
/// ```
#[derive(Debug, Default, Clone)]
pub struct Journal {
    store: MemStore,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// An empty journal rejecting payloads longer than `max` bytes —
    /// mainly so the oversized-append path is testable without
    /// multi-gigabyte allocations.
    pub fn with_max_record(max: usize) -> Journal {
        Journal { store: MemStore::with_max_record(max) }
    }

    /// Rebuild from raw bytes (e.g. read back from disk). No validation
    /// happens here; corrupt records surface during [`Journal::latest_valid`].
    pub fn from_bytes(buf: Vec<u8>) -> Journal {
        Journal { store: MemStore::from_bytes(buf) }
    }

    /// The raw journal bytes (what would be persisted).
    pub fn bytes(&self) -> &[u8] {
        self.store.bytes()
    }

    /// Append one record. The journal is unchanged on error.
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> Result<(), StoreError> {
        self.store.append(kind, payload)
    }

    /// The payload of the newest record of `kind` whose checksum verifies.
    pub fn latest_valid(&self, kind: u8) -> Option<&[u8]> {
        self.store.latest_valid(kind)
    }

    /// `(valid, corrupt)` record counts across the whole journal.
    pub fn record_counts(&self) -> (usize, usize) {
        self.store.record_counts()
    }

    /// Number of structurally complete records (valid or not).
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Chaos hook: flip one payload byte of record `index` (0-based, oldest
    /// first), leaving the length prefix intact so the scan stays aligned.
    /// Returns `false` when the record does not exist or has an empty
    /// payload. This models torn checkpoint writes; it is compiled only
    /// for tests and the `chaos` feature (the chaos experiment binaries),
    /// not into the default public API.
    #[cfg(any(test, feature = "chaos"))]
    pub fn corrupt_record(&mut self, index: usize, byte: usize) -> bool {
        self.store.corrupt_record(index, byte)
    }
}

/// Service index in the stable [`Service::ALL`] order — the wire tag for
/// services inside diagnosis records.
fn service_index(s: Service) -> u8 {
    Service::ALL.iter().position(|&x| x == s).expect("service in ALL") as u8
}

fn read_service(r: &mut Reader<'_>) -> Result<Service, CheckpointError> {
    let i = r.u8()? as usize;
    Service::ALL.get(i).copied().ok_or(CheckpointError::Invalid("service index"))
}

fn resource_index(k: ResourceKind) -> u8 {
    ResourceKind::ALL.iter().position(|&x| x == k).expect("resource in ALL") as u8
}

fn read_resource(r: &mut Reader<'_>) -> Result<ResourceKind, CheckpointError> {
    let i = r.u8()? as usize;
    ResourceKind::ALL.get(i).copied().ok_or(CheckpointError::Invalid("resource index"))
}

fn put_dependency(out: &mut Vec<u8>, d: Dependency) {
    match d {
        Dependency::ServiceProcess(s) => {
            put_u8(out, 0);
            put_u8(out, service_index(s));
        }
        Dependency::MySqlReachable => put_u8(out, 1),
        Dependency::RabbitMqReachable => put_u8(out, 2),
        Dependency::NtpAgent => put_u8(out, 3),
        Dependency::Libvirt => put_u8(out, 4),
    }
}

fn read_dependency(r: &mut Reader<'_>) -> Result<Dependency, CheckpointError> {
    Ok(match r.u8()? {
        0 => Dependency::ServiceProcess(read_service(r)?),
        1 => Dependency::MySqlReachable,
        2 => Dependency::RabbitMqReachable,
        3 => Dependency::NtpAgent,
        4 => Dependency::Libvirt,
        _ => return Err(CheckpointError::Invalid("dependency tag")),
    })
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn read_string(r: &mut Reader<'_>) -> Result<String, CheckpointError> {
    let bytes = r.bytes()?;
    String::from_utf8(bytes.to_vec()).map_err(|_| CheckpointError::Invalid("string utf8"))
}

/// Encode one [`Diagnosis`] bit-exactly (f64 fields as raw little-endian
/// bits), so a diagnosis released before a crash and one read back from
/// the store after a restart compare equal byte for byte.
pub(crate) fn put_diagnosis(out: &mut Vec<u8>, d: &Diagnosis) {
    match d.kind {
        FaultKind::Operational { status, rpc } => {
            put_u8(out, 0);
            match status {
                Some(s) => {
                    put_u8(out, 1);
                    put_u16(out, s);
                }
                None => {
                    put_u8(out, 0);
                    put_u16(out, 0);
                }
            }
            put_u8(out, rpc as u8);
        }
        FaultKind::Performance { observed_ms, baseline_ms } => {
            put_u8(out, 1);
            put_f64(out, observed_ms);
            put_f64(out, baseline_ms);
        }
    }
    put_u16(out, d.api.0);
    put_u64(out, d.ts);
    put_u32(out, d.matched.len() as u32);
    for m in &d.matched {
        put_u16(out, m.0);
    }
    put_f64(out, d.theta);
    put_u64(out, d.beta_used as u64);
    put_u64(out, d.candidates as u64);
    put_u32(out, d.root_causes.len() as u32);
    for rc in &d.root_causes {
        put_u8(out, rc.node.0);
        match &rc.cause {
            CauseKind::Resource(k) => {
                put_u8(out, 0);
                put_u8(out, resource_index(*k));
            }
            CauseKind::Dependency(dep) => {
                put_u8(out, 1);
                put_dependency(out, *dep);
            }
            CauseKind::StaleTelemetry { stale_resources, stale_watchers } => {
                put_u8(out, 2);
                put_u32(out, stale_resources.len() as u32);
                for k in stale_resources {
                    put_u8(out, resource_index(*k));
                }
                put_u32(out, stale_watchers.len() as u32);
                for dep in stale_watchers {
                    put_dependency(out, *dep);
                }
            }
        }
        put_string(out, &rc.why);
    }
    match d.confidence {
        CaptureConfidence::Exact => put_u8(out, 0),
        CaptureConfidence::Degraded { gaps, lost } => {
            put_u8(out, 1);
            put_u32(out, gaps);
            put_u32(out, lost);
        }
        CaptureConfidence::Cancelled => put_u8(out, 2),
    }
}

/// Decode one [`Diagnosis`] written by [`put_diagnosis`].
pub(crate) fn read_diagnosis(r: &mut Reader<'_>) -> Result<Diagnosis, CheckpointError> {
    let kind = match r.u8()? {
        0 => {
            let has_status = r.u8()?;
            let status_val = r.u16()?;
            let status = match has_status {
                0 => None,
                1 => Some(status_val),
                _ => return Err(CheckpointError::Invalid("status tag")),
            };
            let rpc = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(CheckpointError::Invalid("rpc flag")),
            };
            FaultKind::Operational { status, rpc }
        }
        1 => FaultKind::Performance { observed_ms: r.f64()?, baseline_ms: r.f64()? },
        _ => return Err(CheckpointError::Invalid("fault kind tag")),
    };
    let api = ApiId(r.u16()?);
    let ts = r.u64()?;
    let n_matched = r.u32()? as usize;
    let mut matched = Vec::with_capacity(n_matched.min(1024));
    for _ in 0..n_matched {
        matched.push(OpSpecId(r.u16()?));
    }
    let theta = r.f64()?;
    let beta_used = r.u64()? as usize;
    let candidates = r.u64()? as usize;
    let n_causes = r.u32()? as usize;
    let mut root_causes = Vec::with_capacity(n_causes.min(1024));
    for _ in 0..n_causes {
        let node = NodeId(r.u8()?);
        let cause = match r.u8()? {
            0 => CauseKind::Resource(read_resource(r)?),
            1 => CauseKind::Dependency(read_dependency(r)?),
            2 => {
                let n_res = r.u32()? as usize;
                let mut stale_resources = Vec::with_capacity(n_res.min(1024));
                for _ in 0..n_res {
                    stale_resources.push(read_resource(r)?);
                }
                let n_dep = r.u32()? as usize;
                let mut stale_watchers = Vec::with_capacity(n_dep.min(1024));
                for _ in 0..n_dep {
                    stale_watchers.push(read_dependency(r)?);
                }
                CauseKind::StaleTelemetry { stale_resources, stale_watchers }
            }
            _ => return Err(CheckpointError::Invalid("cause tag")),
        };
        let why = read_string(r)?;
        root_causes.push(RootCause { node, cause, why });
    }
    let confidence = match r.u8()? {
        0 => CaptureConfidence::Exact,
        1 => CaptureConfidence::Degraded { gaps: r.u32()?, lost: r.u32()? },
        2 => CaptureConfidence::Cancelled,
        _ => return Err(CheckpointError::Invalid("confidence tag")),
    };
    Ok(Diagnosis {
        kind,
        api,
        ts,
        matched,
        theta,
        beta_used,
        candidates,
        root_causes,
        confidence,
        // Attribution is a post-pass artifact, recomputed from the mined
        // traffic graph after replay; it is not persisted per-diagnosis.
        attribution: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_round_trips_records_in_order() {
        let mut j = Journal::new();
        j.append(1, b"alpha").unwrap();
        j.append(2, b"beta").unwrap();
        j.append(1, b"gamma").unwrap();
        assert_eq!(j.len(), 3);
        assert_eq!(j.record_counts(), (3, 0));
        assert_eq!(j.latest_valid(1), Some(&b"gamma"[..]));
        assert_eq!(j.latest_valid(2), Some(&b"beta"[..]));
        assert_eq!(j.latest_valid(9), None);

        // Survives a serialize/deserialize cycle.
        let j2 = Journal::from_bytes(j.bytes().to_vec());
        assert_eq!(j2.latest_valid(1), Some(&b"gamma"[..]));
    }

    #[test]
    fn corrupt_record_is_skipped_not_fatal() {
        let mut j = Journal::new();
        j.append(1, b"good-old").unwrap();
        j.append(1, b"good-new").unwrap();
        assert!(j.corrupt_record(1, 3));
        assert_eq!(j.record_counts(), (1, 1));
        // Restore falls back to the older valid record; records *after* a
        // corrupt one stay reachable thanks to the length prefix.
        assert_eq!(j.latest_valid(1), Some(&b"good-old"[..]));
        j.append(1, b"newest").unwrap();
        assert_eq!(j.latest_valid(1), Some(&b"newest"[..]));
    }

    #[test]
    fn empty_and_truncated_journals_restore_nothing() {
        assert!(Journal::new().is_empty());
        assert_eq!(Journal::new().latest_valid(1), None);
        let mut j = Journal::new();
        j.append(1, b"payload").unwrap();
        // Chop off the tail: the truncated record is not yielded at all.
        let cut = Journal::from_bytes(j.bytes()[..j.bytes().len() - 3].to_vec());
        assert_eq!(cut.latest_valid(1), None);
        assert!(cut.is_empty());
    }

    #[test]
    fn oversized_append_is_a_typed_error_not_a_truncated_prefix() {
        // The PR 3 journal cast `payload.len() as u32` unchecked; a
        // payload over u32::MAX would have written a wrapped length
        // prefix and desynchronized every later record. Now it is a
        // typed error and the journal is untouched.
        let mut j = Journal::with_max_record(16);
        j.append(1, &[7u8; 16]).unwrap();
        let err = j.append(1, &[7u8; 17]).unwrap_err();
        assert_eq!(err, StoreError::Oversized { len: 17, max: 16 });
        assert_eq!(j.record_counts(), (1, 0));
        assert_eq!(j.latest_valid(1), Some(&[7u8; 16][..]));
        // The default bound is the record format's u32 limit.
        Journal::new().append(1, b"any reasonable payload").unwrap();
    }

    #[test]
    fn diagnosis_codec_round_trips_every_variant() {
        let mk = |kind, confidence, cause| Diagnosis {
            kind,
            api: ApiId(321),
            ts: 9_876_543,
            matched: vec![OpSpecId(0), OpSpecId(7)],
            theta: 0.987_654_321,
            beta_used: 12,
            candidates: 5,
            root_causes: vec![RootCause {
                node: NodeId(3),
                cause,
                why: "observed at 99.4% for 3 intervals".to_string(),
            }],
            confidence,
            attribution: None,
        };
        let cases = [
            mk(
                FaultKind::Operational { status: Some(503), rpc: false },
                CaptureConfidence::Exact,
                CauseKind::Resource(ResourceKind::ALL[4]),
            ),
            mk(
                FaultKind::Operational { status: None, rpc: true },
                CaptureConfidence::Degraded { gaps: 2, lost: 9 },
                CauseKind::Dependency(Dependency::ServiceProcess(Service::ALL[11])),
            ),
            mk(
                FaultKind::Performance { observed_ms: 123.456, baseline_ms: 7.5 },
                CaptureConfidence::Cancelled,
                CauseKind::StaleTelemetry {
                    stale_resources: vec![ResourceKind::ALL[0], ResourceKind::ALL[2]],
                    stale_watchers: vec![Dependency::NtpAgent, Dependency::Libvirt],
                },
            ),
        ];
        for d in &cases {
            let mut buf = Vec::new();
            put_diagnosis(&mut buf, d);
            let mut r = Reader::new(&buf);
            let back = read_diagnosis(&mut r).unwrap();
            r.done().unwrap();
            assert_eq!(&back, d);
        }
        // Bad tags are rejected, never mis-decoded.
        let mut buf = Vec::new();
        put_diagnosis(&mut buf, &cases[0]);
        buf[0] = 9;
        assert!(read_diagnosis(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn event_codec_round_trips_every_variant() {
        use gretel_model::Direction;
        let mk = |fault, corr, dir| Event {
            id: MessageId(77),
            ts: 123_456,
            api: ApiId(901),
            direction: dir,
            is_rpc: true,
            state_change: false,
            noise_api: true,
            src_node: NodeId(3),
            dst_node: NodeId(7),
            corr,
            fault,
            gap_before: 9,
        };
        for ev in [
            mk(FaultMark::None, None, Direction::Request),
            mk(FaultMark::RestError(503), Some(42), Direction::Response),
            mk(FaultMark::RpcError, None, Direction::Response),
        ] {
            let mut buf = Vec::new();
            put_event(&mut buf, &ev);
            let mut r = Reader::new(&buf);
            let back = read_event(&mut r).unwrap();
            r.done().unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn event_decode_rejects_bad_tags() {
        let ev = Event {
            id: MessageId(0),
            ts: 0,
            api: ApiId(0),
            direction: Direction::Request,
            is_rpc: false,
            state_change: false,
            noise_api: false,
            src_node: NodeId(0),
            dst_node: NodeId(0),
            corr: None,
            fault: FaultMark::None,
            gap_before: 0,
        };
        let mut buf = Vec::new();
        put_event(&mut buf, &ev);
        // Direction byte out of range.
        let mut bad = buf.clone();
        bad[18] = 9;
        assert!(read_event(&mut Reader::new(&bad)).is_err());
        // Fault tag out of range.
        let mut bad = buf.clone();
        bad[31] = 9;
        assert!(read_event(&mut Reader::new(&bad)).is_err());
        // Truncated.
        assert!(read_event(&mut Reader::new(&buf[..10])).is_err());
    }
}

//! Match explanations: *why* did an operation match a snapshot?
//!
//! A diagnosis that names an operation is only actionable if the operator
//! can see the evidence. [`Detector::explain_operational`] reconstructs,
//! for one candidate operation, exactly which snapshot messages matched
//! which fingerprint literals (the greedy backward assignment the scored
//! matcher uses), the truncation point, and the evidence span.

use crate::detect::Detector;
use crate::event::Event;
use gretel_model::{symbol, ApiId, Catalog, OpSpecId};

/// One literal of the pattern and where (if anywhere) it matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiteralMatch {
    /// The literal API.
    pub api: ApiId,
    /// Index into the snapshot's event array, when matched.
    pub event_index: Option<usize>,
}

/// The full explanation for one candidate operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchExplanation {
    /// The candidate operation.
    pub op: OpSpecId,
    /// The bounded literal pattern that was matched (oldest first).
    pub literals: Vec<LiteralMatch>,
    /// Whether every literal found a home (a complete match).
    pub complete: bool,
    /// Events between the earliest matched literal and the fault,
    /// inclusive — the evidence span in messages.
    pub span: usize,
}

impl MatchExplanation {
    /// Render the explanation with API labels.
    pub fn render(&self, catalog: &Catalog) -> String {
        let mut out = format!(
            "candidate {}: {} ({} of {} literals matched, span {} events)\n",
            self.op,
            if self.complete { "COMPLETE" } else { "partial" },
            self.literals.iter().filter(|l| l.event_index.is_some()).count(),
            self.literals.len(),
            self.span
        );
        for l in &self.literals {
            out.push_str(&format!(
                "  {} {} {}\n",
                match l.event_index {
                    Some(i) => format!("@{i:>6}"),
                    None => "missing".to_string(),
                },
                symbol::encode(l.api),
                catalog.get(l.api).label()
            ));
        }
        out
    }
}

impl Detector<'_> {
    /// Explain how (or how far) `op` matches the snapshot for an
    /// operational fault at `fault_index` on `offending`. Uses the same
    /// anchored greedy backward assignment as detection; among the
    /// possible truncation points the best-scoring one is explained.
    /// Returns `None` when `op`'s fingerprint does not contain the
    /// offending API at all.
    pub fn explain_operational(
        &self,
        events: &[Event],
        fault_index: usize,
        offending: ApiId,
        op: OpSpecId,
    ) -> Option<MatchExplanation> {
        let cfg = self.config();
        let catalog = self.library().catalog().clone();
        let fp = self.library().get(op);

        let truncations = if cfg.truncate {
            fp.truncate_at_each(offending)
        } else {
            vec![fp.clone()]
        };
        if truncations.is_empty() {
            return None;
        }

        // Anchored evidence: non-noise events up to and including the
        // fault, remembering original indices.
        let anchored: Vec<(usize, ApiId)> = events
            .iter()
            .enumerate()
            .take(fault_index + 1)
            .filter(|(_, e)| !e.noise_api)
            .map(|(i, e)| (i, e.api))
            .collect();

        let mut best: Option<MatchExplanation> = None;
        for t in truncations {
            let literals = t.literals(&catalog, cfg.prune_rpcs);
            let pattern: &[ApiId] = match cfg.max_literals {
                Some(k) if literals.len() > k => &literals[literals.len() - k..],
                _ => &literals[..],
            };
            if pattern.is_empty() {
                continue;
            }
            // Greedy backward assignment.
            let mut assignment: Vec<LiteralMatch> = Vec::with_capacity(pattern.len());
            let mut bound = anchored.len();
            let mut exhausted = false;
            for &lit in pattern.iter().rev() {
                let found = (!exhausted)
                    .then(|| anchored[..bound].iter().rposition(|&(_, api)| api == lit))
                    .flatten();
                match found {
                    Some(pos) => {
                        assignment.push(LiteralMatch {
                            api: lit,
                            event_index: Some(anchored[pos].0),
                        });
                        bound = pos;
                    }
                    None => {
                        exhausted = true;
                        assignment.push(LiteralMatch { api: lit, event_index: None });
                    }
                }
            }
            assignment.reverse();
            let matched = assignment.iter().filter(|l| l.event_index.is_some()).count();
            let complete = matched == assignment.len();
            let span = assignment
                .iter()
                .filter_map(|l| l.event_index)
                .min()
                .map(|lo| fault_index - lo + 1)
                .unwrap_or(0);
            let candidate = MatchExplanation { op, literals: assignment, complete, span };
            let better = match &best {
                None => true,
                Some(b) => {
                    let bm = b.literals.iter().filter(|l| l.event_index.is_some()).count();
                    matched > bm || (matched == bm && candidate.span < b.span)
                }
            };
            if better {
                best = Some(candidate);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GretelConfig;
    use crate::event::FaultMark;
    use crate::fingerprint::FingerprintLibrary;
    use gretel_model::{Catalog, Direction, HttpMethod, MessageId, NodeId, Service, Workflows};
    use gretel_sim::Deployment;

    fn event(id: u64, api: ApiId, cat: &Catalog) -> Event {
        let def = cat.get(api);
        Event {
            id: MessageId(id),
            ts: id,
            api,
            direction: Direction::Request,
            is_rpc: def.is_rpc(),
            state_change: def.is_state_change(),
            noise_api: def.noise.is_some(),
            src_node: NodeId(0),
            dst_node: NodeId(1),
            corr: None,
            fault: FaultMark::None,
            gap_before: 0,
        }
    }

    #[test]
    fn complete_match_is_explained_with_positions() {
        let cat = Catalog::openstack();
        let wf = Workflows::new(cat.clone());
        let dep = Deployment::standard();
        let spec = wf.vm_create_spec(gretel_model::OpSpecId(0));
        let (lib, _) =
            FingerprintLibrary::characterize(cat.clone(), &[spec], &dep, 2, 3);
        let detector = Detector::new(&lib, GretelConfig { alpha: 32, ..Default::default() });

        let fp = lib.get(gretel_model::OpSpecId(0)).clone();
        let ports_post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        let events: Vec<Event> = fp
            .atoms
            .iter()
            .enumerate()
            .map(|(i, a)| event(i as u64, a.api, &cat))
            .collect();
        let fault_index = events.iter().position(|e| e.api == ports_post).unwrap();
        let ex = detector
            .explain_operational(&events[..=fault_index], fault_index, ports_post, gretel_model::OpSpecId(0))
            .expect("explanation");
        assert!(ex.complete, "{}", ex.render(&cat));
        assert!(ex.span >= ex.literals.len());
        // Positions are strictly increasing.
        let pos: Vec<usize> = ex.literals.iter().filter_map(|l| l.event_index).collect();
        assert!(pos.windows(2).all(|w| w[0] < w[1]));
        // The last literal is the offending API at the fault position.
        assert_eq!(ex.literals.last().unwrap().event_index, Some(fault_index));
        let rendered = ex.render(&cat);
        assert!(rendered.contains("COMPLETE"));
        assert!(rendered.contains("ports.json"));
    }

    #[test]
    fn partial_match_marks_missing_literals() {
        let cat = Catalog::openstack();
        let wf = Workflows::new(cat.clone());
        let dep = Deployment::standard();
        let spec = wf.vm_create_spec(gretel_model::OpSpecId(0));
        let (lib, _) =
            FingerprintLibrary::characterize(cat.clone(), &[spec], &dep, 2, 5);
        let detector = Detector::new(&lib, GretelConfig { alpha: 32, ..Default::default() });

        let ports_post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        // Snapshot holds ONLY the fault message: everything else missing.
        let events = vec![event(0, ports_post, &cat)];
        let ex = detector
            .explain_operational(&events, 0, ports_post, gretel_model::OpSpecId(0))
            .expect("explanation");
        assert!(!ex.complete);
        assert!(ex.literals.iter().any(|l| l.event_index.is_none()));
        assert!(ex.render(&cat).contains("missing"));
    }

    #[test]
    fn unrelated_operation_yields_none() {
        let cat = Catalog::openstack();
        let wf = Workflows::new(cat.clone());
        let dep = Deployment::standard();
        let specs = vec![
            wf.vm_create_spec(gretel_model::OpSpecId(0)),
            wf.cinder_list_spec(gretel_model::OpSpecId(1)),
        ];
        let (lib, _) = FingerprintLibrary::characterize(cat.clone(), &specs, &dep, 2, 7);
        let detector = Detector::new(&lib, GretelConfig { alpha: 32, ..Default::default() });
        let ports_post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        let events = vec![event(0, ports_post, &cat)];
        // cinder_list never touches ports.json.
        assert!(detector
            .explain_operational(&events, 0, ports_post, gretel_model::OpSpecId(1))
            .is_none());
    }
}

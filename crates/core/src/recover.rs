//! The fault-tolerant analyzer service: supervision, checkpoint/replay
//! recovery, durable state, and honest degradation under analysis
//! overload.
//!
//! [`run_service_cfg`](crate::service::run_service_cfg) assumes its worker
//! pool never fails. This module drops that assumption and rebuilds the
//! pipeline around four mechanisms:
//!
//! * **Supervision** — each [`SnapshotAnalyzer`] worker runs jobs inside a
//!   panic boundary. A crashed worker reports its in-flight job and dies;
//!   the supervisor (the receiver thread) restarts it after a capped
//!   exponential backoff and requeues the job. A job that keeps crashing
//!   past [`RecoveryConfig::max_attempts`] is abandoned *visibly*: every
//!   fault it covered surfaces as a
//!   [`CaptureConfidence::Cancelled`](crate::CaptureConfidence::Cancelled)
//!   diagnosis.
//! * **Checkpoint/replay** — every [`RecoveryConfig::checkpoint_every`]
//!   merged messages the service quiesces the pool and appends the full
//!   ingest state (analyzer window, pairer, perf detectors, per-agent
//!   resequencer positions and ready queues, next job sequence number) to
//!   a checksummed [`Store`]. After a crash the
//!   service restores the latest valid record and the agents re-ship
//!   their deterministic streams; the restored resequencers discard the
//!   already-consumed prefix as duplicates, so replay resumes exactly
//!   where the checkpoint left off. Released diagnoses travel as their
//!   own store records ([`KIND_DIAGNOSES`]), written immediately *before*
//!   the checkpoint that makes them unrepeatable — so a crash (in-process
//!   or whole-process) can neither lose nor duplicate a diagnosis.
//! * **Durability** — [`run_service_recoverable`] keeps its store in
//!   memory ([`MemStore`]); [`run_service_durable`] takes any
//!   [`Store`] — in practice a
//!   [`FileStore`](gretel_store::FileStore) — and survives whole-process
//!   kills: a fresh process pointed at the same store restores the newest
//!   valid checkpoint, re-derives the released-diagnosis watermark from
//!   the [`KIND_DIAGNOSES`] records, and replays to byte-identical
//!   output. The durable store also carries the fingerprint library
//!   ([`KIND_LIBRARY`] snapshots), enabling live hot-reload: a grown
//!   library adopted mid-run takes effect at the next checkpoint boundary
//!   without dropping in-flight windows.
//! * **Budgets** — snapshot analysis runs under a per-job budget
//!   ([`SnapshotAnalyzer::analyze_bounded`]); a stalled job is cancelled
//!   and reported, never allowed to wedge its worker.
//!
//! [`AnalyzerChaos`] is the analysis-plane twin of
//! [`CaptureImpairment`]: a seeded injector that kills workers, stalls
//! jobs, and corrupts checkpoint records, each decision a pure function of
//! `(seed, job, attempt)` so every run is reproducible.

use crate::analyzer::{Analyzer, AnalyzerStats, JobBudget, SnapshotAnalyzer, SnapshotJob};
use crate::anomaly::scan_message;
use crate::checkpoint::{codec, put_diagnosis, read_diagnosis};
use crate::config::GretelConfig;
use crate::event::FaultMark;
use crate::fingerprint::FingerprintLibrary;
use crate::report::Diagnosis;
use crate::service::{
    ship_batches, BackpressurePolicy, ServiceConfig, ServiceError, ServiceStats,
};
use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use gretel_model::{Message, NodeId};
use gretel_netcap::{
    batch_frames, decode_one, encode, CaptureAgent, CaptureImpairment, CaptureStats, FrameBatch,
    Resequencer,
};
use gretel_store::{MemStore, Store};
use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

/// Seeded fault injection for the *analysis* plane — the counterpart of
/// the capture-plane [`CaptureImpairment`]. Every decision is a pure
/// function of the seed and the job's identity, so runs are reproducible
/// regardless of thread scheduling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyzerChaos {
    /// Probability that a worker is killed (panics) when it picks up a
    /// job, per `(job, attempt)` — only while `attempt <
    /// kill_attempts`, so a job survives its retry budget and the run
    /// still produces its full output.
    pub kill_prob: f64,
    /// Number of leading attempts the kill coin may fire on. With the
    /// default 2, a job can crash its worker at attempts 0 and 1 and then
    /// completes normally at attempt 2.
    pub kill_attempts: u32,
    /// Probability that a job stalls past its budget and is cancelled.
    pub stall_prob: f64,
    /// Probability that a checkpoint record is corrupted on the store
    /// (flipping one payload byte), forcing restore to fall back to an
    /// older record.
    pub corrupt_prob: f64,
    /// Seed for all coins.
    pub seed: u64,
}

const SALT_KILL: u64 = 21;
const SALT_STALL: u64 = 22;
const SALT_CORRUPT: u64 = 23;
const SALT_CORRUPT_BYTE: u64 = 24;

/// Splitmix64 finalizer over `(seed, a, b, salt)` — the same coin family
/// the capture-plane injector uses, so chaos decisions are pure functions
/// of their inputs.
fn mix64(seed: u64, a: u64, b: u64, salt: u64) -> u64 {
    let mut x = seed
        ^ (a + 1).wrapping_mul(0xA076_1D64_78BD_642F)
        ^ (b + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (salt + 1).wrapping_mul(0xE703_7ED1_A0B4_28DB);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

fn coin(seed: u64, a: u64, b: u64, salt: u64) -> f64 {
    (mix64(seed, a, b, salt) >> 11) as f64 / (1u64 << 53) as f64
}

impl AnalyzerChaos {
    /// No chaos at all.
    pub fn none() -> AnalyzerChaos {
        AnalyzerChaos { kill_prob: 0.0, kill_attempts: 2, stall_prob: 0.0, corrupt_prob: 0.0, seed: 0 }
    }

    /// Whether this injector can never fire.
    pub fn is_noop(&self) -> bool {
        self.kill_prob <= 0.0 && self.stall_prob <= 0.0 && self.corrupt_prob <= 0.0
    }

    fn kill(&self, seq: u64, attempt: u32) -> bool {
        attempt < self.kill_attempts
            && coin(self.seed, seq, attempt as u64, SALT_KILL) < self.kill_prob
    }

    fn stall(&self, seq: u64, attempt: u32) -> bool {
        coin(self.seed, seq, attempt as u64, SALT_STALL) < self.stall_prob
    }

    fn corrupt(&self, ckpt_index: u64) -> Option<usize> {
        (coin(self.seed, ckpt_index, 0, SALT_CORRUPT) < self.corrupt_prob)
            .then(|| mix64(self.seed, ckpt_index, 1, SALT_CORRUPT_BYTE) as usize)
    }
}

impl Default for AnalyzerChaos {
    fn default() -> AnalyzerChaos {
        AnalyzerChaos::none()
    }
}

/// Configuration for [`run_service_recoverable`].
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// The underlying pipeline shape. `backpressure` must be
    /// [`BackpressurePolicy::Block`] (lossy eviction is nondeterministic
    /// across restarts, so replay could not reproduce the pre-crash
    /// stream); frames are always sequence-stamped, adding
    /// [`CaptureImpairment::none`] when no impairment is configured.
    pub service: ServiceConfig,
    /// Checkpoint the full ingest state every this many merged messages.
    pub checkpoint_every: u64,
    /// Per-job analysis budget; a job exhausting it is cancelled. Must be
    /// deterministic ([`JobBudget::is_deterministic`]): a wall-clock
    /// budget could cancel different jobs on replay than in the original
    /// run, breaking byte-identical recovery —
    /// [`run_service_recoverable`] rejects it with
    /// [`ServiceError::NondeterministicBudget`].
    pub budget: JobBudget,
    /// Seeded analysis-plane fault injection.
    pub chaos: AnalyzerChaos,
    /// Give up on a job after this many attempts; the abandoned job's
    /// faults surface as `Cancelled` diagnoses. Must exceed
    /// [`AnalyzerChaos::kill_attempts`] for the chaos oracle (identical
    /// output) to hold.
    pub max_attempts: u32,
    /// Scheduled service crashes: the n-th cycle crashes after merging
    /// this many messages (one point consumed per cycle, in order). The
    /// service then restores from the store and replays. An exhausted
    /// or oversized list simply lets the run complete.
    pub crash_points: Vec<u64>,
}

impl Default for RecoveryConfig {
    fn default() -> RecoveryConfig {
        RecoveryConfig {
            service: ServiceConfig::default(),
            checkpoint_every: 256,
            // Orders of magnitude above any real job's pass count, yet a
            // pure function of the job — replay-stable by construction.
            budget: JobBudget::Passes(1 << 20),
            chaos: AnalyzerChaos::none(),
            max_attempts: 5,
            crash_points: Vec::new(),
        }
    }
}

/// What the supervision and recovery machinery did during one
/// [`run_service_recoverable`] (or [`run_service_durable`]) run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Workers killed (by chaos or a real panic) and restarted.
    pub worker_crashes: u64,
    /// In-flight jobs requeued after their worker crashed.
    pub jobs_requeued: u64,
    /// Jobs cancelled — analysis budget exhausted or retry budget spent —
    /// and surfaced as `Cancelled` diagnoses.
    pub jobs_cancelled: u64,
    /// Checkpoint records appended to the store.
    pub checkpoints_written: u64,
    /// Checkpoint records corrupted by chaos (restore skips them).
    pub checkpoints_corrupt: u64,
    /// State restorations after a crash within this process — in-process
    /// crash-point restores and post-reload re-entries. Restoring state
    /// at *process* start (the whole-process kill arm) is counted by the
    /// driver as a process restart, not here.
    pub restores: u64,
    /// Replayed frames discarded by restored resequencers as
    /// already-consumed duplicates.
    pub replayed_frames: u64,
    /// Diagnoses regenerated during replay that had already been released
    /// (possible only when a corrupt checkpoint forces an older restore
    /// point); suppressed so the output holds each diagnosis exactly once.
    pub duplicate_releases_suppressed: u64,
    /// Fingerprint-library snapshots adopted by a live hot-reload.
    pub library_reloads: u64,
}

/// Store record kind: one full ingest-state checkpoint.
pub const KIND_CHECKPOINT: u8 = 1;
/// Store record kind: a batch of released diagnoses plus the release
/// watermark, written immediately before the checkpoint that makes their
/// regeneration a suppressed duplicate.
pub const KIND_DIAGNOSES: u8 = 2;
/// Store record kind: a fingerprint-library snapshot
/// ([`FingerprintLibrary::to_snapshot`]); the newest valid one is the
/// library a durable restart runs with.
pub const KIND_LIBRARY: u8 = 3;

/// One agent's receiver-side stream state (always sequenced here).
struct RecvStream {
    reseq: Resequencer,
    ready: VecDeque<(u32, Message, FaultMark)>,
    done: bool,
}

impl RecvStream {
    /// Queue released messages for the merge, scanning the run in one
    /// batch-wide pass (the marks are pure functions of the messages, so
    /// replay after a restore recomputes identical ones).
    fn admit(&mut self, released: impl IntoIterator<Item = (u32, Message)>) {
        for (gap, msg) in released {
            let mark = scan_message(&msg);
            self.ready.push_back((gap, msg, mark));
        }
    }

    fn refill(
        &mut self,
        rx: &Receiver<FrameBatch>,
        stats: &mut ServiceStats,
    ) -> Result<(), ServiceError> {
        while self.ready.is_empty() && !self.done {
            match rx.recv() {
                Ok(batch) => {
                    stats.channel_ops += 1;
                    stats.frames += batch.frames() as u64;
                    stats.bytes += batch.byte_len() as u64;
                    let mut released = Vec::with_capacity(batch.frames());
                    for (msg, seq) in batch.decode_all()? {
                        released.extend(self.reseq.push(seq, msg));
                    }
                    self.admit(released);
                }
                Err(_) => {
                    self.done = true;
                    let released = self.reseq.flush();
                    self.admit(released);
                }
            }
        }
        Ok(())
    }
}

/// Serialize the receiver+analyzer state into one checkpoint payload.
/// `lib_len` records the library size the checkpoint was written under,
/// so a restart can skip checkpoints whose (hot-reloaded) library it
/// failed to load.
fn encode_checkpoint(
    analyzer_state: &[u8],
    next_seq: u64,
    streams: &[RecvStream],
    lib_len: u32,
) -> Vec<u8> {
    use codec::{put_u32, put_u64};
    let mut out = Vec::new();
    put_u32(&mut out, lib_len);
    put_u32(&mut out, analyzer_state.len() as u32);
    out.extend_from_slice(analyzer_state);
    put_u64(&mut out, next_seq);
    put_u32(&mut out, streams.len() as u32);
    for st in streams {
        let rs = st.reseq.export_state();
        put_u32(&mut out, rs.len() as u32);
        out.extend_from_slice(&rs);
        // Messages released by the resequencer but not yet merged: they
        // will come back from replay only as discarded duplicates, so they
        // MUST travel with the checkpoint.
        put_u32(&mut out, st.ready.len() as u32);
        // The fault marks are NOT serialized: the scan is a pure function
        // of the message, so restore recomputes identical marks — the
        // checkpoint format is unchanged from the per-message service.
        for (gap, msg, _mark) in &st.ready {
            put_u32(&mut out, *gap);
            let frame = encode(msg);
            put_u32(&mut out, frame.len() as u32);
            out.extend_from_slice(&frame);
        }
    }
    out
}

/// Decoded checkpoint: analyzer state bytes, next job sequence number,
/// per-agent receiver stream state, and the library size at write time.
/// `done` is recomputed, not stored — replay closes every stream again.
#[allow(clippy::type_complexity)]
fn decode_checkpoint(
    payload: &[u8],
    n_agents: usize,
) -> Result<(Vec<u8>, u64, Vec<RecvStream>, u32), ServiceError> {
    use crate::checkpoint::CheckpointError;
    let mut r = codec::Reader::new(payload);
    let lib_len = r.u32()?;
    let analyzer_state = r.bytes()?.to_vec();
    let next_seq = r.u64()?;
    let n = r.u32()? as usize;
    if n != n_agents {
        return Err(CheckpointError::Invalid("checkpoint agent count").into());
    }
    let mut streams = Vec::with_capacity(n);
    for _ in 0..n {
        let reseq = Resequencer::restore_state(r.bytes()?)?;
        let n_ready = r.u32()? as usize;
        let mut ready = VecDeque::with_capacity(n_ready);
        for _ in 0..n_ready {
            let gap = r.u32()?;
            let msg = decode_one(r.bytes()?)?;
            let mark = scan_message(&msg);
            ready.push_back((gap, msg, mark));
        }
        streams.push(RecvStream { reseq, ready, done: false });
    }
    r.done()?;
    Ok((analyzer_state, next_seq, streams, lib_len))
}

/// Serialize one release batch: the watermark plus `(job seq, diagnoses)`
/// pairs, each diagnosis in the bit-exact checkpoint codec.
fn encode_release(up_to: u64, jobs: &[(u64, Vec<Diagnosis>)]) -> Vec<u8> {
    use codec::{put_u32, put_u64};
    let mut out = Vec::new();
    put_u64(&mut out, up_to);
    put_u32(&mut out, jobs.len() as u32);
    for (seq, ds) in jobs {
        put_u64(&mut out, *seq);
        put_u32(&mut out, ds.len() as u32);
        for d in ds {
            put_diagnosis(&mut out, d);
        }
    }
    out
}

/// Decode a [`KIND_DIAGNOSES`] record back into its watermark and jobs.
#[allow(clippy::type_complexity)]
fn decode_release(payload: &[u8]) -> Result<(u64, Vec<(u64, Vec<Diagnosis>)>), ServiceError> {
    let mut r = codec::Reader::new(payload);
    let up_to = r.u64()?;
    let n = r.u32()? as usize;
    let mut jobs = Vec::with_capacity(n);
    for _ in 0..n {
        let seq = r.u64()?;
        let n_ds = r.u32()? as usize;
        let mut ds = Vec::with_capacity(n_ds);
        for _ in 0..n_ds {
            ds.push(read_diagnosis(&mut r)?);
        }
        jobs.push((seq, ds));
    }
    r.done()?;
    Ok((up_to, jobs))
}

/// The release watermark a restarted process must honor: the maximum
/// `up_to` over every valid [`KIND_DIAGNOSES`] record on the store.
fn store_watermark(store: &dyn Store) -> Result<u64, ServiceError> {
    let mut w = 0u64;
    for payload in store.records_of(KIND_DIAGNOSES) {
        let (up_to, _) = decode_release(payload)?;
        w = w.max(up_to);
    }
    Ok(w)
}

/// Collect the run's output from the store: every released diagnosis,
/// ordered by job sequence number. Jobs are deduplicated by sequence
/// (first record wins) as defense in depth; the watermark protocol means
/// duplicates never reach the store in the first place.
fn read_diagnoses(store: &dyn Store) -> Result<Vec<Diagnosis>, ServiceError> {
    let mut by_seq: BTreeMap<u64, Vec<Diagnosis>> = BTreeMap::new();
    for payload in store.records_of(KIND_DIAGNOSES) {
        let (_, jobs) = decode_release(payload)?;
        for (seq, ds) in jobs {
            by_seq.entry(seq).or_insert(ds);
        }
    }
    Ok(by_seq.into_values().flatten().collect())
}

type JobMsg = (u64, u32, SnapshotJob);
type ResMsg = (u64, Vec<Diagnosis>, bool);

/// Marker panic payload for a chaos-killed worker; raised with
/// `resume_unwind` so the panic hook (and its stderr backtrace) is
/// skipped — the supervisor handles the crash, nobody needs the noise.
struct ChaosKill;

/// The worker pool plus its supervisor state. The receiver thread owns
/// this and *is* the supervisor: it pumps crash reports between merge
/// steps, restarts dead workers with capped exponential backoff, and
/// requeues their in-flight jobs.
struct Pool<'sc, 'env> {
    scope: &'sc std::thread::Scope<'sc, 'env>,
    job_tx: Sender<JobMsg>,
    /// Held only to hand clones to respawned workers (never received
    /// from), so the job channel cannot disconnect while jobs are queued.
    job_rx: Receiver<JobMsg>,
    res_tx: Sender<ResMsg>,
    res_rx: Receiver<ResMsg>,
    crash_tx: Sender<JobMsg>,
    crash_rx: Receiver<JobMsg>,
    sa: SnapshotAnalyzer<'env>,
    chaos: AnalyzerChaos,
    budget: JobBudget,
    max_attempts: u32,
    /// Jobs submitted but not yet resolved into `pending`.
    outstanding: usize,
    /// Resolved results by job sequence number: `(diagnoses, cancelled)`.
    pending: BTreeMap<u64, (Vec<Diagnosis>, bool)>,
    worker_crashes: u64,
    jobs_requeued: u64,
}

impl<'sc, 'env> Pool<'sc, 'env> {
    fn spawn_worker(&self) {
        let job_rx = self.job_rx.clone();
        let res_tx = self.res_tx.clone();
        let crash_tx = self.crash_tx.clone();
        let sa = self.sa;
        let chaos = self.chaos;
        let budget = self.budget;
        self.scope.spawn(move || {
            while let Ok((seq, attempt, job)) = job_rx.recv() {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if chaos.kill(seq, attempt) {
                        std::panic::resume_unwind(Box::new(ChaosKill));
                    }
                    // A stalled job is modeled as one whose budget is
                    // already gone: analyze_bounded cancels it. Zero
                    // passes, not a zero duration — the stall coin is
                    // seeded, so the cancellation replays identically.
                    let b = if chaos.stall(seq, attempt) { JobBudget::Passes(0) } else { budget };
                    sa.analyze_bounded(&job, b)
                }));
                match outcome {
                    Ok((ds, cancelled)) => {
                        if res_tx.send((seq, ds, cancelled)).is_err() {
                            return; // collector gone (teardown)
                        }
                    }
                    Err(_) => {
                        // The worker is now considered crashed: report the
                        // in-flight job and die. The supervisor restarts us.
                        let _ = crash_tx.send((seq, attempt, job));
                        return;
                    }
                }
            }
        });
    }

    /// Handle one crash report: restart the worker (after backoff) and
    /// requeue or abandon the job.
    fn handle_crash(&mut self, (seq, attempt, job): JobMsg) -> Result<(), ServiceError> {
        self.worker_crashes += 1;
        // Capped exponential backoff before the replacement worker comes
        // up: 100µs · 2^attempt, at most 10ms — enough to not hot-loop on
        // a deterministic crasher, short enough for tests.
        let backoff = Duration::from_micros(100 << attempt.min(7)).min(Duration::from_millis(10));
        std::thread::sleep(backoff);
        self.spawn_worker();
        if attempt + 1 < self.max_attempts {
            self.jobs_requeued += 1;
            self.submit_raw(seq, attempt + 1, job)
        } else {
            // Retry budget exhausted: abandon visibly. The supervisor
            // produces the cancellation surface itself — no worker needed.
            self.pending.insert(seq, (self.sa.cancel(&job), true));
            self.outstanding -= 1;
            Ok(())
        }
    }

    /// Drain whatever results and crash reports are immediately available.
    fn pump(&mut self) -> Result<(), ServiceError> {
        loop {
            if let Ok(crash) = self.crash_rx.try_recv() {
                self.handle_crash(crash)?;
                continue;
            }
            match self.res_rx.try_recv() {
                Ok((seq, ds, cancelled)) => {
                    self.pending.insert(seq, (ds, cancelled));
                    self.outstanding -= 1;
                }
                Err(_) => return Ok(()),
            }
        }
    }

    fn submit_raw(&mut self, seq: u64, attempt: u32, job: SnapshotJob) -> Result<(), ServiceError> {
        let mut job = Some((seq, attempt, job));
        while let Some(j) = job.take() {
            match self.job_tx.try_send(j) {
                Ok(()) => return Ok(()),
                Err(crossbeam_channel::TrySendError::Full(j)) => {
                    job = Some(j);
                    // Make room: resolve results / crashes while the pool
                    // catches up.
                    self.pump()?;
                    std::thread::yield_now();
                }
                Err(crossbeam_channel::TrySendError::Disconnected(_)) => {
                    return Err(ServiceError::PoolDisconnected);
                }
            }
        }
        unreachable!("loop exits via return")
    }

    /// Submit a fresh job (attempt 0).
    fn submit(&mut self, seq: u64, job: SnapshotJob) -> Result<(), ServiceError> {
        self.outstanding += 1;
        self.submit_raw(seq, 0, job)
    }

    /// Block until every submitted job has resolved into `pending`.
    fn quiesce(&mut self) -> Result<(), ServiceError> {
        while self.outstanding > 0 {
            if let Ok(crash) = self.crash_rx.try_recv() {
                self.handle_crash(crash)?;
                continue;
            }
            match self.res_rx.try_recv() {
                Ok((seq, ds, cancelled)) => {
                    self.pending.insert(seq, (ds, cancelled));
                    self.outstanding -= 1;
                }
                // Nothing ready: nap briefly, then re-check crash reports
                // (workers are either computing or a report is in flight).
                Err(_) => std::thread::sleep(Duration::from_micros(50)),
            }
        }
        Ok(())
    }
}

/// A fingerprint-library hot-reload scheduled into a durable run: once
/// this many messages have merged in the current cycle, the service
/// checkpoints, appends the snapshot to the store ([`KIND_LIBRARY`]), and
/// re-enters with the new library — in-flight windows survive via the
/// checkpoint, and the matcher uses the new fingerprints from the next
/// snapshot freeze on. Snapshots should *extend* the running library
/// (append new operations); a shrinking snapshot forces restore to fall
/// back past every checkpoint written under the larger library.
#[derive(Debug, Clone)]
pub struct LibraryReload {
    /// Fire once this cycle's merged-message count reaches this value.
    pub at_merged: u64,
    /// The full library snapshot ([`FingerprintLibrary::to_snapshot`]).
    pub snapshot: Vec<u8>,
}

/// Configuration for [`run_service_durable`]: the recovery shape plus the
/// durable-only arms (whole-process kill, library hot-reload).
#[derive(Debug, Clone, Default)]
pub struct DurableConfig {
    /// Supervision, checkpoint cadence, budget, chaos, in-process crash
    /// points — exactly as for [`run_service_recoverable`].
    pub recovery: RecoveryConfig,
    /// Simulated whole-process kill (SIGKILL model): once this many
    /// messages have merged in a cycle, the function returns
    /// [`DurableOutcome::Killed`] *without* checkpointing or committing —
    /// everything since the last checkpoint boundary dies. The driver
    /// re-invokes with the same store to model the process restart. One
    /// kill per invocation.
    pub kill_point: Option<u64>,
    /// Scheduled library hot-reloads, consumed front to back.
    pub reloads: Vec<LibraryReload>,
}

/// How a [`run_service_durable`] invocation ended.
#[derive(Debug)]
pub enum DurableOutcome {
    /// The stream fully merged; all diagnoses are committed on the store.
    Completed {
        /// Released diagnoses, ordered by job sequence (read back from
        /// the store's [`KIND_DIAGNOSES`] records).
        diagnoses: Vec<Diagnosis>,
        /// Transport statistics (replay-inflated, as documented on
        /// [`run_service_recoverable`]).
        service: ServiceStats,
        /// Analyzer counters from the final library epoch.
        analyzer: AnalyzerStats,
        /// Supervision/recovery counters for this invocation.
        recovery: RecoveryStats,
    },
    /// The scheduled [`DurableConfig::kill_point`] fired; uncommitted
    /// state was discarded. Re-invoke with the same store to restart.
    Killed {
        /// Transport statistics up to the kill.
        service: ServiceStats,
        /// Supervision/recovery counters up to the kill.
        recovery: RecoveryStats,
    },
}

/// Cross-cycle supervisor state threaded through [`run_cycles`].
struct RunState<'a> {
    store: &'a mut dyn Store,
    stats: RecoveryStats,
    service_stats: ServiceStats,
    /// Job seqs below this have been released; replay must not re-release.
    released_watermark: u64,
    crash_points: VecDeque<u64>,
    /// Chaos corrupt-coin index: counts every checkpoint record ever
    /// appended to this store, corrupt ones included.
    ckpt_index: u64,
    first_cycle: bool,
    kill_point: Option<u64>,
    reloads: VecDeque<LibraryReload>,
    /// Pristine analyzer state for cold replay (no usable checkpoint).
    initial_state: Vec<u8>,
}

impl<'a> RunState<'a> {
    fn new(
        store: &'a mut dyn Store,
        cfg: &RecoveryConfig,
        initial_state: Vec<u8>,
        kill_point: Option<u64>,
        reloads: Vec<LibraryReload>,
    ) -> Result<RunState<'a>, ServiceError> {
        let released_watermark = store_watermark(store)?;
        let ckpt_index = gretel_store::records(store.bytes())
            .filter(|r| r.kind == KIND_CHECKPOINT)
            .count() as u64;
        Ok(RunState {
            store,
            stats: RecoveryStats::default(),
            service_stats: ServiceStats::default(),
            released_watermark,
            crash_points: cfg.crash_points.iter().copied().collect(),
            ckpt_index,
            first_cycle: true,
            kill_point,
            reloads: reloads.into(),
            initial_state,
        })
    }
}

/// How one service cycle ended.
enum CycleEnd {
    /// Stream fully merged, all jobs resolved and committed.
    Completed,
    /// A scheduled in-process crash point fired; uncommitted state was
    /// discarded and the next cycle restores from the store.
    Crashed,
    /// The scheduled whole-process kill fired (nothing was committed).
    Killed,
    /// A library reload fired after a clean checkpoint boundary; the
    /// payload is the snapshot to re-enter with.
    Reload(Vec<u8>),
}

/// How [`run_cycles`] ended (a [`CycleEnd`] minus the internal `Crashed`,
/// which restarts the cycle loop instead of returning).
enum RunEnd {
    Completed,
    Killed,
    Reload(Vec<u8>),
}

/// Release every pending result below `up_to` as one [`KIND_DIAGNOSES`]
/// store record, suppressing already-released duplicates. The record is
/// written even when the batch is empty: the watermark it carries must
/// survive a process restart.
fn commit_release(
    pool: &mut Pool<'_, '_>,
    up_to: u64,
    st: &mut RunState<'_>,
    metrics: Option<&gretel_obs::PipelineMetrics>,
) -> Result<(), ServiceError> {
    let t = gretel_obs::StageTimer::start(metrics, gretel_obs::Stage::Commit);
    let mut released = 0u64;
    let mut jobs: Vec<(u64, Vec<Diagnosis>)> = Vec::new();
    while let Some((&seq, _)) = pool.pending.first_key_value() {
        if seq >= up_to {
            break;
        }
        let (seq, (ds, cancelled)) = pool.pending.pop_first().expect("checked non-empty");
        if seq < st.released_watermark {
            st.stats.duplicate_releases_suppressed += 1;
            continue;
        }
        if cancelled {
            st.stats.jobs_cancelled += 1;
        }
        released += ds.len() as u64;
        jobs.push((seq, ds));
    }
    let payload = encode_release(up_to, &jobs);
    st.store.append(KIND_DIAGNOSES, &payload)?;
    st.released_watermark = st.released_watermark.max(up_to);
    t.finish();
    if let Some(m) = metrics {
        m.count(gretel_obs::Stage::Commit, released);
        m.add(gretel_obs::Meter::StoreBytes, payload.len() as u64);
    }
    Ok(())
}

/// One checkpoint boundary: quiesce the pool, release pending diagnoses
/// ([`KIND_DIAGNOSES`] first — a torn tail then loses at most the
/// checkpoint, and replay regenerates nothing that was released), append
/// the checkpoint, maybe chaos-corrupt it, and sync the store.
fn write_boundary(
    pool: &mut Pool<'_, '_>,
    analyzer: &Analyzer<'_>,
    streams: &[RecvStream],
    seq: u64,
    chaos: &AnalyzerChaos,
    st: &mut RunState<'_>,
    metrics: Option<&gretel_obs::PipelineMetrics>,
) -> Result<(), ServiceError> {
    pool.quiesce()?;
    commit_release(pool, seq, st, metrics)?;
    let t = gretel_obs::StageTimer::start(metrics, gretel_obs::Stage::Checkpoint);
    let astate = analyzer.export_state().ok_or(ServiceError::NotCheckpointable)?;
    let payload = encode_checkpoint(&astate, seq, streams, analyzer.library_len() as u32);
    st.store.append(KIND_CHECKPOINT, &payload)?;
    t.finish();
    if let Some(m) = metrics {
        m.count(gretel_obs::Stage::Checkpoint, 1);
        m.add(gretel_obs::Meter::CheckpointsWritten, 1);
        m.add(gretel_obs::Meter::CheckpointBytes, payload.len() as u64);
        m.add(gretel_obs::Meter::StoreBytes, payload.len() as u64);
    }
    st.stats.checkpoints_written += 1;
    if let Some(byte) = chaos.corrupt(st.ckpt_index) {
        // The checkpoint is the record just appended — the last one on
        // the store, whatever mix of kinds precedes it.
        let last = st.store.len().saturating_sub(1);
        let corrupt_ok = st.store.corrupt_record(last, byte);
        debug_assert!(corrupt_ok, "just-appended record exists");
        st.stats.checkpoints_corrupt += 1;
    }
    st.ckpt_index += 1;
    st.store.sync()?;
    Ok(())
}

fn validate(cfg: &RecoveryConfig) -> Result<(), ServiceError> {
    assert!(cfg.service.channel_capacity > 0);
    assert!(cfg.checkpoint_every > 0);
    assert!(cfg.max_attempts > 0);
    if cfg.service.backpressure == BackpressurePolicy::DropOldest {
        return Err(ServiceError::UnsupportedBackpressure);
    }
    // A wall-clock budget cancels by machine speed, not job content;
    // replay after a crash could then diverge from the original run.
    if !cfg.budget.is_deterministic() {
        return Err(ServiceError::NondeterministicBudget);
    }
    Ok(())
}

/// The supervisor loop shared by [`run_service_recoverable`] and
/// [`run_service_durable`]: restore from the newest usable checkpoint,
/// run one cycle (agents re-ship, restored resequencers dedup the
/// consumed prefix), and repeat across in-process crash points until the
/// stream completes — or a kill/reload arm ends the invocation early.
fn run_cycles(
    analyzer: &mut Analyzer<'_>,
    nodes: &[NodeId],
    traffic: &[Message],
    cfg: &RecoveryConfig,
    state: &mut RunState<'_>,
) -> Result<RunEnd, ServiceError> {
    let metrics = cfg.service.metrics.as_deref();
    // Replay needs sequence numbers to dedup the re-shipped prefix.
    let mut service_cfg = cfg.service.clone();
    if service_cfg.impairment.is_none() {
        service_cfg.impairment = Some(CaptureImpairment::none());
    }
    let lib_len = analyzer.library_len();

    loop {
        // ---- Restore ----------------------------------------------------
        // Newest valid checkpoint written under a library we actually
        // have; one written under a larger (hot-reloaded) library whose
        // snapshot record was lost or corrupted references fingerprints
        // we cannot match — fall back past it.
        let mut restored: Option<(Vec<u8>, u64, Vec<RecvStream>)> = None;
        for payload in state.store.records_of(KIND_CHECKPOINT).into_iter().rev() {
            let (astate, next_seq, streams, ck_lib) = decode_checkpoint(payload, nodes.len())?;
            if ck_lib as usize <= lib_len {
                restored = Some((astate, next_seq, streams));
                break;
            }
        }
        let (next_seq_start, mut streams) = match restored {
            Some((astate, next_seq, streams)) => {
                analyzer.restore_state(&astate)?;
                (next_seq, streams)
            }
            None => {
                analyzer.restore_state(&state.initial_state)?;
                let streams = nodes
                    .iter()
                    .map(|_| RecvStream {
                        reseq: Resequencer::new(service_cfg.resequence_depth),
                        ready: VecDeque::new(),
                        done: false,
                    })
                    .collect();
                (0, streams)
            }
        };
        if !state.first_cycle {
            state.stats.restores += 1;
        }
        state.first_cycle = false;
        let replay_base: u64 = streams.iter().map(|s| s.reseq.stats().dup_discarded).sum();
        let crash_point = state.crash_points.pop_front();

        // ---- One cycle --------------------------------------------------
        let workers = service_cfg.effective_workers();
        let snapshot_analyzer = analyzer.snapshot_analyzer().with_metrics(metrics);
        let (job_tx, job_rx) = bounded::<JobMsg>(service_cfg.channel_capacity);
        let (res_tx, res_rx) = unbounded::<ResMsg>();
        let (crash_tx, crash_rx) = unbounded::<JobMsg>();
        let (stat_tx, stat_rx) = unbounded::<CaptureStats>();

        let end = std::thread::scope(|scope| -> Result<CycleEnd, ServiceError> {
            let mut pool = Pool {
                scope,
                job_tx,
                job_rx,
                res_tx,
                res_rx,
                crash_tx,
                crash_rx,
                sa: snapshot_analyzer,
                chaos: cfg.chaos,
                budget: cfg.budget,
                max_attempts: cfg.max_attempts,
                outstanding: 0,
                pending: BTreeMap::new(),
                worker_crashes: 0,
                jobs_requeued: 0,
            };
            for _ in 0..workers {
                pool.spawn_worker();
            }

            // Agents re-ship the whole deterministic stream every cycle;
            // the restored resequencers turn the consumed prefix into
            // discarded duplicates.
            let mut rxs: Vec<Receiver<FrameBatch>> = Vec::with_capacity(nodes.len());
            for &node in nodes {
                let (tx, rx) = bounded::<FrameBatch>(service_cfg.channel_capacity);
                rxs.push(rx);
                let agent = CaptureAgent::new(node);
                let stat_tx = stat_tx.clone();
                let impairment = service_cfg.impairment;
                let ingest_batch = service_cfg.ingest_batch;
                scope.spawn(move || {
                    let mut capture = CaptureStats::default();
                    let mut drops = 0u64;
                    // Impair the flat frame list first (coins key on
                    // per-agent frame indices), then pack into arenas.
                    let frames = agent.capture_seq(traffic.iter(), 0);
                    let frames = match impairment {
                        Some(imp) => imp.apply(node, frames, &mut capture),
                        None => unreachable!("recoverable runs are always sequenced"),
                    };
                    let batches = batch_frames(&frames, ingest_batch);
                    ship_batches(batches, &tx, None, BackpressurePolicy::Block, &mut drops);
                    let _ = stat_tx.send(capture);
                });
            }
            drop(stat_tx);

            let mut seq = next_seq_start;
            let mut merged = 0u64;
            let mut ended = CycleEnd::Completed;
            for (st, rx) in streams.iter_mut().zip(&rxs) {
                st.refill(rx, &mut state.service_stats)?;
            }
            loop {
                // A whole-process kill is a SIGKILL model: nothing gets
                // checkpointed or committed, the uncommitted tail dies.
                if state.kill_point.is_some_and(|p| merged >= p) {
                    ended = CycleEnd::Killed;
                    break;
                }
                if crash_point.is_some_and(|p| merged >= p) {
                    ended = CycleEnd::Crashed;
                    break;
                }
                // A reload, by contrast, is graceful: full checkpoint
                // boundary first, then the snapshot record — a tear
                // between the two loses only the reload, never state.
                if state.reloads.front().is_some_and(|r| merged >= r.at_merged) {
                    write_boundary(&mut pool, analyzer, &streams, seq, &cfg.chaos, state, metrics)?;
                    let reload = state.reloads.pop_front().expect("checked non-empty");
                    state.store.append(KIND_LIBRARY, &reload.snapshot)?;
                    state.store.sync()?;
                    state.stats.library_reloads += 1;
                    if let Some(m) = metrics {
                        m.add(gretel_obs::Meter::LibraryReloads, 1);
                        m.add(gretel_obs::Meter::StoreBytes, reload.snapshot.len() as u64);
                    }
                    ended = CycleEnd::Reload(reload.snapshot);
                    break;
                }
                let mut best: Option<usize> = None;
                for (i, st) in streams.iter().enumerate() {
                    if let Some((_, m, _)) = st.ready.front() {
                        let better = match best {
                            None => true,
                            Some(b) => {
                                let (_, bm, _) =
                                    streams[b].ready.front().expect("best is nonempty");
                                (m.ts_us, m.id) < (bm.ts_us, bm.id)
                            }
                        };
                        if better {
                            best = Some(i);
                        }
                    }
                }
                let Some(i) = best else { break };
                let (gap, msg, mark) =
                    streams[i].ready.pop_front().expect("chosen head is nonempty");
                streams[i].refill(&rxs[i], &mut state.service_stats)?;
                if gap > 0 {
                    analyzer.note_capture_gap(gap);
                }
                let t = gretel_obs::StageTimer::start(metrics, gretel_obs::Stage::Ingest);
                let jobs = analyzer.ingest_marked(&msg, mark, metrics);
                t.finish();
                if let Some(m) = metrics {
                    m.count(gretel_obs::Stage::Ingest, 1);
                }
                for job in jobs {
                    pool.submit(seq, job)?;
                    seq += 1;
                }
                pool.pump()?;
                merged += 1;

                if merged.is_multiple_of(cfg.checkpoint_every) {
                    write_boundary(&mut pool, analyzer, &streams, seq, &cfg.chaos, state, metrics)?;
                }
            }

            if matches!(ended, CycleEnd::Completed) {
                for job in analyzer.finish_jobs_observed(metrics) {
                    pool.submit(seq, job)?;
                    seq += 1;
                }
                pool.quiesce()?;
                // Final release: the stream is exhausted, nothing can be
                // regenerated — no checkpoint needed to make it safe, but
                // the diagnoses themselves must reach the store durably.
                commit_release(&mut pool, seq, state, metrics)?;
                state.store.sync()?;
                for st in &streams {
                    state.service_stats.capture.merge(&st.reseq.stats());
                }
            }
            state.stats.worker_crashes += pool.worker_crashes;
            state.stats.jobs_requeued += pool.jobs_requeued;
            let replay_now: u64 = streams.iter().map(|s| s.reseq.stats().dup_discarded).sum();
            state.stats.replayed_frames += replay_now.saturating_sub(replay_base);

            // Teardown (on crash/kill this abandons in-flight work):
            // dropping the receiver ends of the agent links unblocks the
            // agents; dropping the pool's job channel ends the workers.
            // Uncommitted pending results die with `pool`.
            drop(rxs);
            drop(pool);
            while let Ok(capture) = stat_rx.recv() {
                state.service_stats.capture.merge(&capture);
            }
            Ok(ended)
        })?;

        match end {
            CycleEnd::Completed => return Ok(RunEnd::Completed),
            CycleEnd::Crashed => continue,
            CycleEnd::Killed => return Ok(RunEnd::Killed),
            CycleEnd::Reload(snap) => return Ok(RunEnd::Reload(snap)),
        }
    }
}

/// [`run_service_cfg`](crate::service::run_service_cfg) hardened against
/// analysis-plane failure: supervised workers, periodic checkpoints to an
/// in-memory [`MemStore`], deterministic replay after scheduled crashes,
/// and per-job budgets. Returns the committed diagnoses (exactly-once:
/// replay can neither lose nor duplicate one) plus transport, analyzer,
/// and recovery statistics.
///
/// With no chaos and no crash points the output is byte-identical to
/// [`run_service_cfg`](crate::service::run_service_cfg); with worker-kill
/// chaos and crashes it *stays* identical — that is the oracle the
/// recovery experiment checks. Note that [`ServiceStats::frames`] counts
/// every shipped frame including replays (replayed frames also show up in
/// [`RecoveryStats::replayed_frames`] and the capture stats'
/// `dup_discarded`), so transport stats inflate with each crash while the
/// diagnosis stream and [`AnalyzerStats`] do not.
///
/// For a store that outlives the process — surviving whole-process kills
/// and carrying the fingerprint library — see [`run_service_durable`].
pub fn run_service_recoverable(
    analyzer: &mut Analyzer<'_>,
    nodes: &[NodeId],
    traffic: &[Message],
    cfg: &RecoveryConfig,
) -> Result<(Vec<Diagnosis>, ServiceStats, AnalyzerStats, RecoveryStats), ServiceError> {
    validate(cfg)?;
    let initial_state = analyzer.export_state().ok_or(ServiceError::NotCheckpointable)?;
    let mut store = MemStore::new();
    let mut state = RunState::new(&mut store, cfg, initial_state, None, Vec::new())?;
    let end = run_cycles(analyzer, nodes, traffic, cfg, &mut state)?;
    debug_assert!(
        matches!(end, RunEnd::Completed),
        "no kill or reload arms are configured here"
    );

    // One end-of-run flush of the merged capture picture. Replay inflates
    // these like it inflates `ServiceStats` (documented above): the meters
    // describe what the transport actually did, crashes included.
    if let Some(m) = cfg.service.metrics.as_deref() {
        state.service_stats.capture.record_into(m);
    }

    let diagnoses = read_diagnoses(&*state.store)?;
    let (service_stats, stats) = (state.service_stats, state.stats);
    Ok((diagnoses, service_stats, analyzer.stats(), stats))
}

/// The durable twin of [`run_service_recoverable`]: the same supervised,
/// checkpointed pipeline over a caller-provided [`Store`] — in practice a
/// [`FileStore`](gretel_store::FileStore) — so recovery survives the
/// death of the whole process, not just a worker or a cycle.
///
/// One invocation models one process lifetime:
///
/// * **Bootstrap** — the newest valid [`KIND_LIBRARY`] snapshot on the
///   store is adopted when it extends `lib` (a live run characterized new
///   operations and a restart must keep matching them); otherwise `lib`'s
///   own snapshot is appended as the base record. The analyzer is built
///   fresh per library epoch, *without* root cause analysis.
/// * **Restore** — the release watermark is re-derived from the store's
///   [`KIND_DIAGNOSES`] records and replay resumes from the newest valid
///   checkpoint written under a library we have (corrupt or torn records
///   simply fall back to an older checkpoint, or to cold replay).
/// * **Kill arm** — [`DurableConfig::kill_point`] returns
///   [`DurableOutcome::Killed`] mid-stream with nothing committed since
///   the last boundary; re-invoking with the same store restarts the
///   process and replays to the exact diagnoses an uninterrupted run
///   produces — zero lost, zero duplicated.
/// * **Reload arm** — each [`LibraryReload`] checkpoints, appends the
///   snapshot, and re-enters with the extended library; in-flight windows
///   survive in the checkpoint and the new fingerprints match from the
///   next snapshot freeze on. An *empty* delta (snapshot identical in
///   coverage) leaves the output byte-identical to no reload at all.
pub fn run_service_durable(
    lib: &FingerprintLibrary,
    gcfg: GretelConfig,
    nodes: &[NodeId],
    traffic: &[Message],
    cfg: &DurableConfig,
    store: &mut dyn Store,
) -> Result<DurableOutcome, ServiceError> {
    validate(&cfg.recovery)?;
    let metrics = cfg.recovery.service.metrics.as_deref();

    // ---- Library bootstrap ----------------------------------------------
    let latest_snapshot = store.latest_valid(KIND_LIBRARY).map(<[u8]>::to_vec);
    let base_snapshot = lib.to_snapshot();
    let mut cur: Option<FingerprintLibrary> = None;
    let mut need_base_record = true;
    if let Some(snap) = latest_snapshot {
        if snap == base_snapshot {
            need_base_record = false;
        } else {
            let stored = FingerprintLibrary::from_snapshot(lib.catalog().clone(), &snap)?;
            if stored.len() >= lib.len() {
                // A previous lifetime hot-reloaded past our base: its
                // library is the truth now.
                cur = Some(stored);
                need_base_record = false;
            }
            // A stored snapshot *smaller* than the base is stale (the
            // caller characterized more operations offline): the base
            // supersedes it below.
        }
    }
    if need_base_record {
        store.append(KIND_LIBRARY, &base_snapshot)?;
        store.sync()?;
        if let Some(m) = metrics {
            m.add(gretel_obs::Meter::StoreBytes, base_snapshot.len() as u64);
        }
    }

    let mut state = {
        // Placeholder; each epoch overwrites it with that epoch's pristine
        // export before any cycle runs.
        let initial_state = Vec::new();
        RunState::new(store, &cfg.recovery, initial_state, cfg.kill_point, cfg.reloads.clone())?
    };

    // ---- Library epochs --------------------------------------------------
    let mut final_astats: Option<AnalyzerStats> = None;
    loop {
        let end = {
            let lib_ref = cur.as_ref().unwrap_or(lib);
            let mut analyzer = Analyzer::new(lib_ref, gcfg);
            state.initial_state =
                analyzer.export_state().ok_or(ServiceError::NotCheckpointable)?;
            let end = run_cycles(&mut analyzer, nodes, traffic, &cfg.recovery, &mut state)?;
            if matches!(end, RunEnd::Completed) {
                final_astats = Some(analyzer.stats());
            }
            end
        };
        match end {
            RunEnd::Completed => {
                if let Some(m) = metrics {
                    state.service_stats.capture.record_into(m);
                }
                let diagnoses = read_diagnoses(&*state.store)?;
                return Ok(DurableOutcome::Completed {
                    diagnoses,
                    service: state.service_stats,
                    analyzer: final_astats.expect("set on Completed"),
                    recovery: state.stats,
                });
            }
            RunEnd::Killed => {
                return Ok(DurableOutcome::Killed {
                    service: state.service_stats,
                    recovery: state.stats,
                });
            }
            RunEnd::Reload(snapshot) => {
                cur = Some(FingerprintLibrary::from_snapshot(lib.catalog().clone(), &snapshot)?);
                // Next epoch restores from the boundary checkpoint the
                // reload just wrote — in-flight windows survive.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_coins_are_deterministic_and_gated() {
        let chaos = AnalyzerChaos { kill_prob: 1.0, ..AnalyzerChaos::none() };
        assert!(chaos.kill(7, 0));
        assert!(chaos.kill(7, 1));
        assert!(!chaos.kill(7, 2), "kill coin never fires past kill_attempts");
        assert!(!AnalyzerChaos::none().kill(7, 0));
        assert!(AnalyzerChaos::none().is_noop());
        let a = AnalyzerChaos { stall_prob: 0.5, seed: 9, ..AnalyzerChaos::none() };
        for seq in 0..64 {
            assert_eq!(a.stall(seq, 0), a.stall(seq, 0));
        }
    }

    #[test]
    fn corrupt_coin_keys_on_checkpoint_index() {
        let chaos = AnalyzerChaos { corrupt_prob: 0.5, seed: 3, ..AnalyzerChaos::none() };
        let fired: Vec<bool> = (0..32).map(|i| chaos.corrupt(i).is_some()).collect();
        assert!(fired.iter().any(|&b| b) && fired.iter().any(|&b| !b));
        assert_eq!(fired, (0..32).map(|i| chaos.corrupt(i).is_some()).collect::<Vec<_>>());
    }

    #[test]
    fn release_records_carry_the_watermark_across_restarts() {
        let mut store = MemStore::new();
        assert_eq!(store_watermark(&store).unwrap(), 0);
        store
            .append(KIND_DIAGNOSES, &encode_release(3, &[(0, vec![]), (2, vec![])]))
            .unwrap();
        store.append(KIND_DIAGNOSES, &encode_release(5, &[(4, vec![])])).unwrap();
        // An empty release still advances the durable watermark.
        store.append(KIND_DIAGNOSES, &encode_release(9, &[])).unwrap();
        assert_eq!(store_watermark(&store).unwrap(), 9);
        assert!(read_diagnoses(&store).unwrap().is_empty());
    }

    fn test_lib() -> FingerprintLibrary {
        let cat = gretel_model::Catalog::openstack();
        let dep = gretel_sim::Deployment::standard();
        let wf = gretel_model::Workflows::new(cat.clone());
        let specs = vec![wf.vm_create_spec(gretel_model::OpSpecId(0))];
        crate::fingerprint::FingerprintLibrary::characterize(cat, &specs, &dep, 1, 1).0
    }

    #[test]
    fn drop_oldest_backpressure_is_rejected() {
        let lib = test_lib();
        let mut analyzer = Analyzer::new(
            &lib,
            crate::config::GretelConfig { alpha: 8, ..Default::default() },
        );
        let cfg = RecoveryConfig {
            service: ServiceConfig {
                backpressure: BackpressurePolicy::DropOldest,
                ..ServiceConfig::default()
            },
            ..RecoveryConfig::default()
        };
        let err = run_service_recoverable(&mut analyzer, &[NodeId(0)], &[], &cfg).unwrap_err();
        assert!(matches!(err, ServiceError::UnsupportedBackpressure));
    }

    #[test]
    fn empty_traffic_completes_without_checkpoints() {
        let lib = test_lib();
        let mut analyzer = Analyzer::new(
            &lib,
            crate::config::GretelConfig { alpha: 8, ..Default::default() },
        );
        let (diags, svc, _, rec) = run_service_recoverable(
            &mut analyzer,
            &[NodeId(0), NodeId(1)],
            &[],
            &RecoveryConfig::default(),
        )
        .expect("empty run completes");
        assert!(diags.is_empty());
        assert_eq!(svc.frames, 0);
        assert_eq!(rec, RecoveryStats::default());
    }

    #[test]
    fn durable_empty_run_bootstraps_the_library_record_once() {
        let lib = test_lib();
        let gcfg = crate::config::GretelConfig { alpha: 8, ..Default::default() };
        let mut store = MemStore::new();
        for _ in 0..2 {
            let out = run_service_durable(
                &lib,
                gcfg,
                &[NodeId(0)],
                &[],
                &DurableConfig::default(),
                &mut store,
            )
            .expect("empty durable run completes");
            match out {
                DurableOutcome::Completed { diagnoses, recovery, .. } => {
                    assert!(diagnoses.is_empty());
                    assert_eq!(recovery.library_reloads, 0);
                }
                DurableOutcome::Killed { .. } => panic!("no kill point configured"),
            }
        }
        // Re-running over the same store adopts the existing base record
        // instead of appending a duplicate.
        assert_eq!(store.records_of(KIND_LIBRARY).len(), 1);
        assert_eq!(store.latest_valid(KIND_LIBRARY).unwrap(), lib.to_snapshot().as_slice());
    }
}

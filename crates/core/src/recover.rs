//! The fault-tolerant analyzer service: supervision, checkpoint/replay
//! recovery, and honest degradation under analysis overload.
//!
//! [`run_service_cfg`](crate::service::run_service_cfg) assumes its worker
//! pool never fails. This module drops that assumption and rebuilds the
//! pipeline around three mechanisms:
//!
//! * **Supervision** — each [`SnapshotAnalyzer`] worker runs jobs inside a
//!   panic boundary. A crashed worker reports its in-flight job and dies;
//!   the supervisor (the receiver thread) restarts it after a capped
//!   exponential backoff and requeues the job. A job that keeps crashing
//!   past [`RecoveryConfig::max_attempts`] is abandoned *visibly*: every
//!   fault it covered surfaces as a
//!   [`CaptureConfidence::Cancelled`](crate::CaptureConfidence::Cancelled)
//!   diagnosis.
//! * **Checkpoint/replay** — every [`RecoveryConfig::checkpoint_every`]
//!   merged messages the service quiesces the pool and appends the full
//!   ingest state (analyzer window, pairer, perf detectors, per-agent
//!   resequencer positions and ready queues, next job sequence number) to
//!   a checksummed [`Journal`]. After a crash the service restores the
//!   latest valid record and the agents re-ship their deterministic
//!   streams; the restored resequencers discard the already-consumed
//!   prefix as duplicates, so replay resumes exactly where the checkpoint
//!   left off. Diagnoses are *output-committed*: released only when the
//!   checkpoint that makes them unrepeatable is on the journal, so a crash
//!   can neither lose nor duplicate a diagnosis.
//! * **Budgets** — snapshot analysis runs under a per-job budget
//!   ([`SnapshotAnalyzer::analyze_bounded`]); a stalled job is cancelled
//!   and reported, never allowed to wedge its worker.
//!
//! [`AnalyzerChaos`] is the analysis-plane twin of
//! [`CaptureImpairment`]: a seeded injector that kills workers, stalls
//! jobs, and corrupts checkpoint records, each decision a pure function of
//! `(seed, job, attempt)` so every run is reproducible.

use crate::analyzer::{Analyzer, AnalyzerStats, JobBudget, SnapshotAnalyzer, SnapshotJob};
use crate::anomaly::scan_message;
use crate::checkpoint::{codec, Journal};
use crate::event::FaultMark;
use crate::report::Diagnosis;
use crate::service::{
    ship_batches, BackpressurePolicy, ServiceConfig, ServiceError, ServiceStats,
};
use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use gretel_model::{Message, NodeId};
use gretel_netcap::{
    batch_frames, decode_one, encode, CaptureAgent, CaptureImpairment, CaptureStats, FrameBatch,
    Resequencer,
};
use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

/// Seeded fault injection for the *analysis* plane — the counterpart of
/// the capture-plane [`CaptureImpairment`]. Every decision is a pure
/// function of the seed and the job's identity, so runs are reproducible
/// regardless of thread scheduling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyzerChaos {
    /// Probability that a worker is killed (panics) when it picks up a
    /// job, per `(job, attempt)` — only while `attempt <
    /// kill_attempts`, so a job survives its retry budget and the run
    /// still produces its full output.
    pub kill_prob: f64,
    /// Number of leading attempts the kill coin may fire on. With the
    /// default 2, a job can crash its worker at attempts 0 and 1 and then
    /// completes normally at attempt 2.
    pub kill_attempts: u32,
    /// Probability that a job stalls past its budget and is cancelled.
    pub stall_prob: f64,
    /// Probability that a checkpoint record is corrupted on the journal
    /// (flipping one payload byte), forcing restore to fall back to an
    /// older record.
    pub corrupt_prob: f64,
    /// Seed for all coins.
    pub seed: u64,
}

const SALT_KILL: u64 = 21;
const SALT_STALL: u64 = 22;
const SALT_CORRUPT: u64 = 23;
const SALT_CORRUPT_BYTE: u64 = 24;

/// Splitmix64 finalizer over `(seed, a, b, salt)` — the same coin family
/// the capture-plane injector uses, so chaos decisions are pure functions
/// of their inputs.
fn mix64(seed: u64, a: u64, b: u64, salt: u64) -> u64 {
    let mut x = seed
        ^ (a + 1).wrapping_mul(0xA076_1D64_78BD_642F)
        ^ (b + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (salt + 1).wrapping_mul(0xE703_7ED1_A0B4_28DB);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

fn coin(seed: u64, a: u64, b: u64, salt: u64) -> f64 {
    (mix64(seed, a, b, salt) >> 11) as f64 / (1u64 << 53) as f64
}

impl AnalyzerChaos {
    /// No chaos at all.
    pub fn none() -> AnalyzerChaos {
        AnalyzerChaos { kill_prob: 0.0, kill_attempts: 2, stall_prob: 0.0, corrupt_prob: 0.0, seed: 0 }
    }

    /// Whether this injector can never fire.
    pub fn is_noop(&self) -> bool {
        self.kill_prob <= 0.0 && self.stall_prob <= 0.0 && self.corrupt_prob <= 0.0
    }

    fn kill(&self, seq: u64, attempt: u32) -> bool {
        attempt < self.kill_attempts
            && coin(self.seed, seq, attempt as u64, SALT_KILL) < self.kill_prob
    }

    fn stall(&self, seq: u64, attempt: u32) -> bool {
        coin(self.seed, seq, attempt as u64, SALT_STALL) < self.stall_prob
    }

    fn corrupt(&self, ckpt_index: u64) -> Option<usize> {
        (coin(self.seed, ckpt_index, 0, SALT_CORRUPT) < self.corrupt_prob)
            .then(|| mix64(self.seed, ckpt_index, 1, SALT_CORRUPT_BYTE) as usize)
    }
}

impl Default for AnalyzerChaos {
    fn default() -> AnalyzerChaos {
        AnalyzerChaos::none()
    }
}

/// Configuration for [`run_service_recoverable`].
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// The underlying pipeline shape. `backpressure` must be
    /// [`BackpressurePolicy::Block`] (lossy eviction is nondeterministic
    /// across restarts, so replay could not reproduce the pre-crash
    /// stream); frames are always sequence-stamped, adding
    /// [`CaptureImpairment::none`] when no impairment is configured.
    pub service: ServiceConfig,
    /// Checkpoint the full ingest state every this many merged messages.
    pub checkpoint_every: u64,
    /// Per-job analysis budget; a job exhausting it is cancelled. Must be
    /// deterministic ([`JobBudget::is_deterministic`]): a wall-clock
    /// budget could cancel different jobs on replay than in the original
    /// run, breaking byte-identical recovery —
    /// [`run_service_recoverable`] rejects it with
    /// [`ServiceError::NondeterministicBudget`].
    pub budget: JobBudget,
    /// Seeded analysis-plane fault injection.
    pub chaos: AnalyzerChaos,
    /// Give up on a job after this many attempts; the abandoned job's
    /// faults surface as `Cancelled` diagnoses. Must exceed
    /// [`AnalyzerChaos::kill_attempts`] for the chaos oracle (identical
    /// output) to hold.
    pub max_attempts: u32,
    /// Scheduled service crashes: the n-th cycle crashes after merging
    /// this many messages (one point consumed per cycle, in order). The
    /// service then restores from the journal and replays. An exhausted
    /// or oversized list simply lets the run complete.
    pub crash_points: Vec<u64>,
}

impl Default for RecoveryConfig {
    fn default() -> RecoveryConfig {
        RecoveryConfig {
            service: ServiceConfig::default(),
            checkpoint_every: 256,
            // Orders of magnitude above any real job's pass count, yet a
            // pure function of the job — replay-stable by construction.
            budget: JobBudget::Passes(1 << 20),
            chaos: AnalyzerChaos::none(),
            max_attempts: 5,
            crash_points: Vec::new(),
        }
    }
}

/// What the supervision and recovery machinery did during one
/// [`run_service_recoverable`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Workers killed (by chaos or a real panic) and restarted.
    pub worker_crashes: u64,
    /// In-flight jobs requeued after their worker crashed.
    pub jobs_requeued: u64,
    /// Jobs cancelled — analysis budget exhausted or retry budget spent —
    /// and surfaced as `Cancelled` diagnoses.
    pub jobs_cancelled: u64,
    /// Checkpoint records appended to the journal.
    pub checkpoints_written: u64,
    /// Checkpoint records corrupted by chaos (restore skips them).
    pub checkpoints_corrupt: u64,
    /// State restorations after a crash (cold restarts included).
    pub restores: u64,
    /// Replayed frames discarded by restored resequencers as
    /// already-consumed duplicates.
    pub replayed_frames: u64,
    /// Diagnoses regenerated during replay that had already been released
    /// (possible only when a corrupt checkpoint forces an older restore
    /// point); suppressed so the output holds each diagnosis exactly once.
    pub duplicate_releases_suppressed: u64,
}

/// Checkpoint record kind on the journal.
const KIND_CHECKPOINT: u8 = 1;

/// One agent's receiver-side stream state (always sequenced here).
struct RecvStream {
    reseq: Resequencer,
    ready: VecDeque<(u32, Message, FaultMark)>,
    done: bool,
}

impl RecvStream {
    /// Queue released messages for the merge, scanning the run in one
    /// batch-wide pass (the marks are pure functions of the messages, so
    /// replay after a restore recomputes identical ones).
    fn admit(&mut self, released: impl IntoIterator<Item = (u32, Message)>) {
        for (gap, msg) in released {
            let mark = scan_message(&msg);
            self.ready.push_back((gap, msg, mark));
        }
    }

    fn refill(
        &mut self,
        rx: &Receiver<FrameBatch>,
        stats: &mut ServiceStats,
    ) -> Result<(), ServiceError> {
        while self.ready.is_empty() && !self.done {
            match rx.recv() {
                Ok(batch) => {
                    stats.channel_ops += 1;
                    stats.frames += batch.frames() as u64;
                    stats.bytes += batch.byte_len() as u64;
                    let mut released = Vec::with_capacity(batch.frames());
                    for (msg, seq) in batch.decode_all()? {
                        released.extend(self.reseq.push(seq, msg));
                    }
                    self.admit(released);
                }
                Err(_) => {
                    self.done = true;
                    let released = self.reseq.flush();
                    self.admit(released);
                }
            }
        }
        Ok(())
    }
}

/// Serialize the receiver+analyzer state into one checkpoint payload.
fn encode_checkpoint(analyzer_state: &[u8], next_seq: u64, streams: &[RecvStream]) -> Vec<u8> {
    use codec::{put_u32, put_u64};
    let mut out = Vec::new();
    put_u32(&mut out, analyzer_state.len() as u32);
    out.extend_from_slice(analyzer_state);
    put_u64(&mut out, next_seq);
    put_u32(&mut out, streams.len() as u32);
    for st in streams {
        let rs = st.reseq.export_state();
        put_u32(&mut out, rs.len() as u32);
        out.extend_from_slice(&rs);
        // Messages released by the resequencer but not yet merged: they
        // will come back from replay only as discarded duplicates, so they
        // MUST travel with the checkpoint.
        put_u32(&mut out, st.ready.len() as u32);
        // The fault marks are NOT serialized: the scan is a pure function
        // of the message, so restore recomputes identical marks — the
        // checkpoint format is unchanged from the per-message service.
        for (gap, msg, _mark) in &st.ready {
            put_u32(&mut out, *gap);
            let frame = encode(msg);
            put_u32(&mut out, frame.len() as u32);
            out.extend_from_slice(&frame);
        }
    }
    out
}

/// Decoded checkpoint: analyzer state bytes, next job sequence number, and
/// per-agent receiver stream state. `done` is recomputed, not stored —
/// replay closes every stream again.
fn decode_checkpoint(
    payload: &[u8],
    n_agents: usize,
) -> Result<(Vec<u8>, u64, Vec<RecvStream>), ServiceError> {
    use crate::checkpoint::CheckpointError;
    let mut r = codec::Reader::new(payload);
    let analyzer_state = r.bytes()?.to_vec();
    let next_seq = r.u64()?;
    let n = r.u32()? as usize;
    if n != n_agents {
        return Err(CheckpointError::Invalid("checkpoint agent count").into());
    }
    let mut streams = Vec::with_capacity(n);
    for _ in 0..n {
        let reseq = Resequencer::restore_state(r.bytes()?)?;
        let n_ready = r.u32()? as usize;
        let mut ready = VecDeque::with_capacity(n_ready);
        for _ in 0..n_ready {
            let gap = r.u32()?;
            let msg = decode_one(r.bytes()?)?;
            let mark = scan_message(&msg);
            ready.push_back((gap, msg, mark));
        }
        streams.push(RecvStream { reseq, ready, done: false });
    }
    r.done()?;
    Ok((analyzer_state, next_seq, streams))
}

type JobMsg = (u64, u32, SnapshotJob);
type ResMsg = (u64, Vec<Diagnosis>, bool);

/// Marker panic payload for a chaos-killed worker; raised with
/// `resume_unwind` so the panic hook (and its stderr backtrace) is
/// skipped — the supervisor handles the crash, nobody needs the noise.
struct ChaosKill;

/// The worker pool plus its supervisor state. The receiver thread owns
/// this and *is* the supervisor: it pumps crash reports between merge
/// steps, restarts dead workers with capped exponential backoff, and
/// requeues their in-flight jobs.
struct Pool<'sc, 'env> {
    scope: &'sc std::thread::Scope<'sc, 'env>,
    job_tx: Sender<JobMsg>,
    /// Held only to hand clones to respawned workers (never received
    /// from), so the job channel cannot disconnect while jobs are queued.
    job_rx: Receiver<JobMsg>,
    res_tx: Sender<ResMsg>,
    res_rx: Receiver<ResMsg>,
    crash_tx: Sender<JobMsg>,
    crash_rx: Receiver<JobMsg>,
    sa: SnapshotAnalyzer<'env>,
    chaos: AnalyzerChaos,
    budget: JobBudget,
    max_attempts: u32,
    /// Jobs submitted but not yet resolved into `pending`.
    outstanding: usize,
    /// Resolved results by job sequence number: `(diagnoses, cancelled)`.
    pending: BTreeMap<u64, (Vec<Diagnosis>, bool)>,
    worker_crashes: u64,
    jobs_requeued: u64,
}

impl<'sc, 'env> Pool<'sc, 'env> {
    fn spawn_worker(&self) {
        let job_rx = self.job_rx.clone();
        let res_tx = self.res_tx.clone();
        let crash_tx = self.crash_tx.clone();
        let sa = self.sa;
        let chaos = self.chaos;
        let budget = self.budget;
        self.scope.spawn(move || {
            while let Ok((seq, attempt, job)) = job_rx.recv() {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if chaos.kill(seq, attempt) {
                        std::panic::resume_unwind(Box::new(ChaosKill));
                    }
                    // A stalled job is modeled as one whose budget is
                    // already gone: analyze_bounded cancels it. Zero
                    // passes, not a zero duration — the stall coin is
                    // seeded, so the cancellation replays identically.
                    let b = if chaos.stall(seq, attempt) { JobBudget::Passes(0) } else { budget };
                    sa.analyze_bounded(&job, b)
                }));
                match outcome {
                    Ok((ds, cancelled)) => {
                        if res_tx.send((seq, ds, cancelled)).is_err() {
                            return; // collector gone (teardown)
                        }
                    }
                    Err(_) => {
                        // The worker is now considered crashed: report the
                        // in-flight job and die. The supervisor restarts us.
                        let _ = crash_tx.send((seq, attempt, job));
                        return;
                    }
                }
            }
        });
    }

    /// Handle one crash report: restart the worker (after backoff) and
    /// requeue or abandon the job.
    fn handle_crash(&mut self, (seq, attempt, job): JobMsg) -> Result<(), ServiceError> {
        self.worker_crashes += 1;
        // Capped exponential backoff before the replacement worker comes
        // up: 100µs · 2^attempt, at most 10ms — enough to not hot-loop on
        // a deterministic crasher, short enough for tests.
        let backoff = Duration::from_micros(100 << attempt.min(7)).min(Duration::from_millis(10));
        std::thread::sleep(backoff);
        self.spawn_worker();
        if attempt + 1 < self.max_attempts {
            self.jobs_requeued += 1;
            self.submit_raw(seq, attempt + 1, job)
        } else {
            // Retry budget exhausted: abandon visibly. The supervisor
            // produces the cancellation surface itself — no worker needed.
            self.pending.insert(seq, (self.sa.cancel(&job), true));
            self.outstanding -= 1;
            Ok(())
        }
    }

    /// Drain whatever results and crash reports are immediately available.
    fn pump(&mut self) -> Result<(), ServiceError> {
        loop {
            if let Ok(crash) = self.crash_rx.try_recv() {
                self.handle_crash(crash)?;
                continue;
            }
            match self.res_rx.try_recv() {
                Ok((seq, ds, cancelled)) => {
                    self.pending.insert(seq, (ds, cancelled));
                    self.outstanding -= 1;
                }
                Err(_) => return Ok(()),
            }
        }
    }

    fn submit_raw(&mut self, seq: u64, attempt: u32, job: SnapshotJob) -> Result<(), ServiceError> {
        let mut job = Some((seq, attempt, job));
        while let Some(j) = job.take() {
            match self.job_tx.try_send(j) {
                Ok(()) => return Ok(()),
                Err(crossbeam_channel::TrySendError::Full(j)) => {
                    job = Some(j);
                    // Make room: resolve results / crashes while the pool
                    // catches up.
                    self.pump()?;
                    std::thread::yield_now();
                }
                Err(crossbeam_channel::TrySendError::Disconnected(_)) => {
                    return Err(ServiceError::PoolDisconnected);
                }
            }
        }
        unreachable!("loop exits via return")
    }

    /// Submit a fresh job (attempt 0).
    fn submit(&mut self, seq: u64, job: SnapshotJob) -> Result<(), ServiceError> {
        self.outstanding += 1;
        self.submit_raw(seq, 0, job)
    }

    /// Block until every submitted job has resolved into `pending`.
    fn quiesce(&mut self) -> Result<(), ServiceError> {
        while self.outstanding > 0 {
            if let Ok(crash) = self.crash_rx.try_recv() {
                self.handle_crash(crash)?;
                continue;
            }
            match self.res_rx.try_recv() {
                Ok((seq, ds, cancelled)) => {
                    self.pending.insert(seq, (ds, cancelled));
                    self.outstanding -= 1;
                }
                // Nothing ready: nap briefly, then re-check crash reports
                // (workers are either computing or a report is in flight).
                Err(_) => std::thread::sleep(Duration::from_micros(50)),
            }
        }
        Ok(())
    }
}

/// How one service cycle ended.
enum CycleEnd {
    /// Stream fully merged, all jobs resolved and committed.
    Completed,
    /// A scheduled crash point fired; uncommitted state was discarded.
    Crashed,
}

/// [`run_service_cfg`](crate::service::run_service_cfg) hardened against
/// analysis-plane failure: supervised workers, periodic checkpoints to an
/// in-memory [`Journal`], deterministic replay after scheduled crashes,
/// and per-job budgets. Returns the committed diagnoses (exactly-once:
/// replay can neither lose nor duplicate one) plus transport, analyzer,
/// and recovery statistics.
///
/// With no chaos and no crash points the output is byte-identical to
/// [`run_service_cfg`](crate::service::run_service_cfg); with worker-kill
/// chaos and crashes it *stays* identical — that is the oracle the
/// recovery experiment checks. Note that [`ServiceStats::frames`] counts
/// every shipped frame including replays (replayed frames also show up in
/// [`RecoveryStats::replayed_frames`] and the capture stats'
/// `dup_discarded`), so transport stats inflate with each crash while the
/// diagnosis stream and [`AnalyzerStats`] do not.
pub fn run_service_recoverable(
    analyzer: &mut Analyzer<'_>,
    nodes: &[NodeId],
    traffic: &[Message],
    cfg: &RecoveryConfig,
) -> Result<(Vec<Diagnosis>, ServiceStats, AnalyzerStats, RecoveryStats), ServiceError> {
    assert!(cfg.service.channel_capacity > 0);
    assert!(cfg.checkpoint_every > 0);
    assert!(cfg.max_attempts > 0);
    if cfg.service.backpressure == BackpressurePolicy::DropOldest {
        return Err(ServiceError::UnsupportedBackpressure);
    }
    // A wall-clock budget cancels by machine speed, not job content;
    // replay after a crash could then diverge from the original run.
    if !cfg.budget.is_deterministic() {
        return Err(ServiceError::NondeterministicBudget);
    }
    let metrics = cfg.service.metrics.as_deref();
    // Replay needs sequence numbers to dedup the re-shipped prefix.
    let mut service_cfg = cfg.service.clone();
    if service_cfg.impairment.is_none() {
        service_cfg.impairment = Some(CaptureImpairment::none());
    }
    let initial_state = analyzer.export_state().ok_or(ServiceError::NotCheckpointable)?;

    let mut journal = Journal::new();
    let mut stats = RecoveryStats::default();
    let mut service_stats = ServiceStats::default();
    // Committed (released) diagnoses by job sequence number.
    let mut committed: BTreeMap<u64, Vec<Diagnosis>> = BTreeMap::new();
    // Job seqs below this have been released; replay must not re-release.
    let mut released_watermark = 0u64;
    let mut crash_points: VecDeque<u64> = cfg.crash_points.iter().copied().collect();
    let mut ckpt_index = 0u64;
    let mut first_cycle = true;

    loop {
        // ---- Restore ----------------------------------------------------
        let (next_seq_start, mut streams) = match journal.latest_valid(KIND_CHECKPOINT) {
            Some(payload) => {
                let (astate, next_seq, streams) = decode_checkpoint(payload, nodes.len())?;
                analyzer.restore_state(&astate)?;
                (next_seq, streams)
            }
            None => {
                analyzer.restore_state(&initial_state)?;
                let streams = nodes
                    .iter()
                    .map(|_| RecvStream {
                        reseq: Resequencer::new(service_cfg.resequence_depth),
                        ready: VecDeque::new(),
                        done: false,
                    })
                    .collect();
                (0, streams)
            }
        };
        if !first_cycle {
            stats.restores += 1;
        }
        first_cycle = false;
        let replay_base: u64 = streams.iter().map(|s| s.reseq.stats().dup_discarded).sum();
        let crash_point = crash_points.pop_front();

        // ---- One cycle --------------------------------------------------
        let workers = service_cfg.effective_workers();
        let snapshot_analyzer = analyzer.snapshot_analyzer().with_metrics(metrics);
        let (job_tx, job_rx) = bounded::<JobMsg>(service_cfg.channel_capacity);
        let (res_tx, res_rx) = unbounded::<ResMsg>();
        let (crash_tx, crash_rx) = unbounded::<JobMsg>();
        let (stat_tx, stat_rx) = unbounded::<CaptureStats>();

        let end = std::thread::scope(|scope| -> Result<CycleEnd, ServiceError> {
            let mut pool = Pool {
                scope,
                job_tx,
                job_rx,
                res_tx,
                res_rx,
                crash_tx,
                crash_rx,
                sa: snapshot_analyzer,
                chaos: cfg.chaos,
                budget: cfg.budget,
                max_attempts: cfg.max_attempts,
                outstanding: 0,
                pending: BTreeMap::new(),
                worker_crashes: 0,
                jobs_requeued: 0,
            };
            for _ in 0..workers {
                pool.spawn_worker();
            }

            // Agents re-ship the whole deterministic stream every cycle;
            // the restored resequencers turn the consumed prefix into
            // discarded duplicates.
            let mut rxs: Vec<Receiver<FrameBatch>> = Vec::with_capacity(nodes.len());
            for &node in nodes {
                let (tx, rx) = bounded::<FrameBatch>(service_cfg.channel_capacity);
                rxs.push(rx);
                let agent = CaptureAgent::new(node);
                let stat_tx = stat_tx.clone();
                let impairment = service_cfg.impairment;
                let ingest_batch = service_cfg.ingest_batch;
                scope.spawn(move || {
                    let mut capture = CaptureStats::default();
                    let mut drops = 0u64;
                    // Impair the flat frame list first (coins key on
                    // per-agent frame indices), then pack into arenas.
                    let frames = agent.capture_seq(traffic.iter(), 0);
                    let frames = match impairment {
                        Some(imp) => imp.apply(node, frames, &mut capture),
                        None => unreachable!("recoverable runs are always sequenced"),
                    };
                    let batches = batch_frames(&frames, ingest_batch);
                    ship_batches(batches, &tx, None, BackpressurePolicy::Block, &mut drops);
                    let _ = stat_tx.send(capture);
                });
            }
            drop(stat_tx);

            // A closure cannot borrow `pool` and the commit state
            // mutably at once, so commits are inline: release every
            // pending result below `up_to`, suppressing already-released
            // duplicates.
            let mut commit =
                |pool: &mut Pool<'_, '_>, up_to: u64, stats: &mut RecoveryStats| {
                    let t = gretel_obs::StageTimer::start(metrics, gretel_obs::Stage::Commit);
                    let mut released = 0u64;
                    while let Some((&seq, _)) = pool.pending.first_key_value() {
                        if seq >= up_to {
                            break;
                        }
                        let (seq, (ds, cancelled)) =
                            pool.pending.pop_first().expect("checked non-empty");
                        if seq < released_watermark {
                            stats.duplicate_releases_suppressed += 1;
                            continue;
                        }
                        if cancelled {
                            stats.jobs_cancelled += 1;
                        }
                        released += ds.len() as u64;
                        committed.insert(seq, ds);
                    }
                    released_watermark = released_watermark.max(up_to);
                    t.finish();
                    if let Some(m) = metrics {
                        m.count(gretel_obs::Stage::Commit, released);
                    }
                };

            let mut seq = next_seq_start;
            let mut merged = 0u64;
            let mut crashed = false;
            for (st, rx) in streams.iter_mut().zip(&rxs) {
                st.refill(rx, &mut service_stats)?;
            }
            loop {
                if crash_point.is_some_and(|p| merged >= p) {
                    crashed = true;
                    break;
                }
                let mut best: Option<usize> = None;
                for (i, st) in streams.iter().enumerate() {
                    if let Some((_, m, _)) = st.ready.front() {
                        let better = match best {
                            None => true,
                            Some(b) => {
                                let (_, bm, _) =
                                    streams[b].ready.front().expect("best is nonempty");
                                (m.ts_us, m.id) < (bm.ts_us, bm.id)
                            }
                        };
                        if better {
                            best = Some(i);
                        }
                    }
                }
                let Some(i) = best else { break };
                let (gap, msg, mark) =
                    streams[i].ready.pop_front().expect("chosen head is nonempty");
                streams[i].refill(&rxs[i], &mut service_stats)?;
                if gap > 0 {
                    analyzer.note_capture_gap(gap);
                }
                let t = gretel_obs::StageTimer::start(metrics, gretel_obs::Stage::Ingest);
                let jobs = analyzer.ingest_marked(&msg, mark, metrics);
                t.finish();
                if let Some(m) = metrics {
                    m.count(gretel_obs::Stage::Ingest, 1);
                }
                for job in jobs {
                    pool.submit(seq, job)?;
                    seq += 1;
                }
                pool.pump()?;
                merged += 1;

                if merged.is_multiple_of(cfg.checkpoint_every) {
                    // Quiesce → checkpoint → release: outputs go out only
                    // once the state that makes replay skip them is on the
                    // journal.
                    pool.quiesce()?;
                    let t = gretel_obs::StageTimer::start(metrics, gretel_obs::Stage::Checkpoint);
                    let astate =
                        analyzer.export_state().ok_or(ServiceError::NotCheckpointable)?;
                    let payload = encode_checkpoint(&astate, seq, &streams);
                    journal.append(KIND_CHECKPOINT, &payload);
                    t.finish();
                    if let Some(m) = metrics {
                        m.count(gretel_obs::Stage::Checkpoint, 1);
                        m.add(gretel_obs::Meter::CheckpointsWritten, 1);
                        m.add(gretel_obs::Meter::CheckpointBytes, payload.len() as u64);
                    }
                    stats.checkpoints_written += 1;
                    if let Some(byte) = cfg.chaos.corrupt(ckpt_index) {
                        let (valid, _) = journal.record_counts();
                        let corrupt_ok = journal.corrupt_record(valid.saturating_sub(1), byte);
                        debug_assert!(corrupt_ok, "latest record exists");
                        stats.checkpoints_corrupt += 1;
                    }
                    ckpt_index += 1;
                    commit(&mut pool, seq, &mut stats);
                }
            }

            if !crashed {
                for job in analyzer.finish_jobs_observed(metrics) {
                    pool.submit(seq, job)?;
                    seq += 1;
                }
                pool.quiesce()?;
                // Final release: the stream is exhausted, nothing can be
                // regenerated — no checkpoint needed to make it safe.
                commit(&mut pool, seq, &mut stats);
                for st in &streams {
                    service_stats.capture.merge(&st.reseq.stats());
                }
            }
            stats.worker_crashes += pool.worker_crashes;
            stats.jobs_requeued += pool.jobs_requeued;
            let replay_now: u64 = streams.iter().map(|s| s.reseq.stats().dup_discarded).sum();
            stats.replayed_frames += replay_now.saturating_sub(replay_base);

            // Teardown (on crash this abandons in-flight work): dropping
            // the receiver ends of the agent links unblocks the agents;
            // dropping the pool's job channel ends the workers. Uncommitted
            // pending results die with `pool`.
            drop(rxs);
            drop(pool);
            while let Ok(capture) = stat_rx.recv() {
                service_stats.capture.merge(&capture);
            }
            Ok(if crashed { CycleEnd::Crashed } else { CycleEnd::Completed })
        })?;

        match end {
            CycleEnd::Completed => break,
            CycleEnd::Crashed => continue,
        }
    }

    // One end-of-run flush of the merged capture picture. Replay inflates
    // these like it inflates `ServiceStats` (documented above): the meters
    // describe what the transport actually did, crashes included.
    if let Some(m) = metrics {
        service_stats.capture.record_into(m);
    }

    let diagnoses = committed.into_values().flatten().collect();
    Ok((diagnoses, service_stats, analyzer.stats(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_coins_are_deterministic_and_gated() {
        let chaos = AnalyzerChaos { kill_prob: 1.0, ..AnalyzerChaos::none() };
        assert!(chaos.kill(7, 0));
        assert!(chaos.kill(7, 1));
        assert!(!chaos.kill(7, 2), "kill coin never fires past kill_attempts");
        assert!(!AnalyzerChaos::none().kill(7, 0));
        assert!(AnalyzerChaos::none().is_noop());
        let a = AnalyzerChaos { stall_prob: 0.5, seed: 9, ..AnalyzerChaos::none() };
        for seq in 0..64 {
            assert_eq!(a.stall(seq, 0), a.stall(seq, 0));
        }
    }

    #[test]
    fn corrupt_coin_keys_on_checkpoint_index() {
        let chaos = AnalyzerChaos { corrupt_prob: 0.5, seed: 3, ..AnalyzerChaos::none() };
        let fired: Vec<bool> = (0..32).map(|i| chaos.corrupt(i).is_some()).collect();
        assert!(fired.iter().any(|&b| b) && fired.iter().any(|&b| !b));
        assert_eq!(fired, (0..32).map(|i| chaos.corrupt(i).is_some()).collect::<Vec<_>>());
    }

    #[test]
    fn drop_oldest_backpressure_is_rejected() {
        let cat = gretel_model::Catalog::openstack();
        let dep = gretel_sim::Deployment::standard();
        let wf = gretel_model::Workflows::new(cat.clone());
        let specs = vec![wf.vm_create_spec(gretel_model::OpSpecId(0))];
        let (lib, _) = crate::fingerprint::FingerprintLibrary::characterize(cat, &specs, &dep, 1, 1);
        let mut analyzer = Analyzer::new(
            &lib,
            crate::config::GretelConfig { alpha: 8, ..Default::default() },
        );
        let cfg = RecoveryConfig {
            service: ServiceConfig {
                backpressure: BackpressurePolicy::DropOldest,
                ..ServiceConfig::default()
            },
            ..RecoveryConfig::default()
        };
        let err = run_service_recoverable(&mut analyzer, &[NodeId(0)], &[], &cfg).unwrap_err();
        assert!(matches!(err, ServiceError::UnsupportedBackpressure));
    }

    #[test]
    fn empty_traffic_completes_without_checkpoints() {
        let cat = gretel_model::Catalog::openstack();
        let dep = gretel_sim::Deployment::standard();
        let wf = gretel_model::Workflows::new(cat.clone());
        let specs = vec![wf.vm_create_spec(gretel_model::OpSpecId(0))];
        let (lib, _) = crate::fingerprint::FingerprintLibrary::characterize(cat, &specs, &dep, 1, 1);
        let mut analyzer = Analyzer::new(
            &lib,
            crate::config::GretelConfig { alpha: 8, ..Default::default() },
        );
        let (diags, svc, _, rec) = run_service_recoverable(
            &mut analyzer,
            &[NodeId(0), NodeId(1)],
            &[],
            &RecoveryConfig::default(),
        )
        .expect("empty run completes");
        assert!(diags.is_empty());
        assert_eq!(svc.frames, 0);
        assert_eq!(rec, RecoveryStats::default());
    }
}

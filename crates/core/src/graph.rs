//! Cross-service state graph and cascade attribution.
//!
//! Flat RCA (Algorithm 3) looks at the *nodes* around one failing
//! operation. That is the right scope for a local fault, but a cascading
//! failure produces a diagnosis per **symptom**: when Cinder dies and Nova
//! volume-attach calls start failing ten seconds later, the operator gets
//! a Cinder report *and* a Nova report, with nothing connecting them — and
//! for a network partition between two healthy services, flat RCA finds
//! nothing at all.
//!
//! This module adds the missing cross-service dimension:
//!
//! * [`ServiceGraph`] — a caller→callee dependency graph mined from the
//!   observed traffic itself (request/response messages, never ground
//!   truth), with per-edge request/error counts and error-onset times;
//! * [`attribute_cascades`] — a post-pass over a run's diagnoses that
//!   walks the graph from each symptomatic service toward upstream
//!   services that failed *earlier*, labels diagnoses [`Attribution::Root`]
//!   vs [`Attribution::Symptom`] and attaches the evidence chain.
//!
//! The pass is deliberately conservative: it only labels a diagnosis when
//! there is an observed call path from the symptom's service to a service
//! that was independently diagnosed at least [`CascadeParams::min_lead`]
//! earlier. Single-service incidents, simultaneous infrastructure outages
//! (MySQL/RabbitMQ are off-wire — no traffic edges lead to them) and
//! plain §7.2 scenarios get no attribution, so their reports are
//! byte-for-byte identical with and without the graph pass.

use crate::rca::CauseKind;
use crate::report::Diagnosis;
use gretel_model::{Catalog, Direction, Message, Service};
use gretel_sim::SimTime;

const N: usize = Service::ALL.len();

/// Traffic statistics for one caller→callee edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct EdgeStats {
    /// Requests observed on the edge.
    pub requests: u64,
    /// Error responses observed on the edge.
    pub errors: u64,
    /// Timestamp of the first error (`u64::MAX` = none yet).
    pub first_error_ts: SimTime,
    /// Timestamp of the last error.
    pub last_error_ts: SimTime,
}

impl Default for EdgeStats {
    fn default() -> Self {
        EdgeStats { requests: 0, errors: 0, first_error_ts: u64::MAX, last_error_ts: 0 }
    }
}

impl EdgeStats {
    /// Whether any traffic was observed on the edge.
    pub fn observed(&self) -> bool {
        self.requests > 0 || self.errors > 0
    }
}

/// Cross-service dependency graph mined from observed traffic.
///
/// A request `src → dst` records a caller→callee edge `src → dst`; an
/// error response records an error on the edge `dst → src` (responses
/// travel callee→caller, so the caller is the response's destination).
/// Noise APIs (heartbeats, status updates, per-op Keystone chatter) are
/// excluded — they would connect everything to everything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceGraph {
    edges: Vec<EdgeStats>, // N*N, row = caller, column = callee
}

impl Default for ServiceGraph {
    fn default() -> Self {
        ServiceGraph { edges: vec![EdgeStats::default(); N * N] }
    }
}

impl ServiceGraph {
    /// Empty graph.
    pub fn new() -> ServiceGraph {
        ServiceGraph::default()
    }

    #[inline]
    fn at(&self, caller: Service, callee: Service) -> &EdgeStats {
        &self.edges[caller.index() as usize * N + callee.index() as usize]
    }

    #[inline]
    fn at_mut(&mut self, caller: Service, callee: Service) -> &mut EdgeStats {
        &mut self.edges[caller.index() as usize * N + callee.index() as usize]
    }

    /// Record one observed message. `noise` is the catalog's noise
    /// classification for the message's API (never ground truth); `error`
    /// is the byte-scan verdict ([`crate::event::FaultMark`] is an error).
    pub fn observe(&mut self, msg: &Message, noise: bool, error: bool) {
        if noise || msg.src_service == msg.dst_service {
            return;
        }
        match msg.direction {
            Direction::Request => {
                self.at_mut(msg.src_service, msg.dst_service).requests += 1;
                if error {
                    // Errors scanned out of a request payload still belong
                    // to the caller→callee edge.
                    self.record_error(msg.src_service, msg.dst_service, msg.ts_us);
                }
            }
            Direction::Response => {
                if error {
                    self.record_error(msg.dst_service, msg.src_service, msg.ts_us);
                }
            }
        }
    }

    fn record_error(&mut self, caller: Service, callee: Service, ts: SimTime) {
        let e = self.at_mut(caller, callee);
        e.errors += 1;
        e.first_error_ts = e.first_error_ts.min(ts);
        e.last_error_ts = e.last_error_ts.max(ts);
    }

    /// Edge statistics for `caller → callee`.
    pub fn edge(&self, caller: Service, callee: Service) -> EdgeStats {
        *self.at(caller, callee)
    }

    /// Services `caller` was observed calling, in stable service order.
    pub fn callees(&self, caller: Service) -> Vec<Service> {
        Service::ALL.iter().copied().filter(|&s| self.at(caller, s).observed()).collect()
    }

    /// Number of observed (non-empty) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().filter(|e| e.observed()).count()
    }

    /// Shortest observed call path `from ⇝ to` (inclusive of both ends),
    /// bounded by `max_hops` edges. BFS in stable service order, so the
    /// result is deterministic.
    pub fn path(&self, from: Service, to: Service, max_hops: usize) -> Option<Vec<Service>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev: [Option<Service>; N] = [None; N];
        let mut frontier = vec![from];
        for _ in 0..max_hops {
            let mut next = Vec::new();
            for &u in &frontier {
                for v in self.callees(u) {
                    if v != from && prev[v.index() as usize].is_none() {
                        prev[v.index() as usize] = Some(u);
                        if v == to {
                            let mut p = vec![to];
                            let mut cur = to;
                            while let Some(pu) = prev[cur.index() as usize] {
                                p.push(pu);
                                cur = pu;
                            }
                            p.reverse();
                            return Some(p);
                        }
                        next.push(v);
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        None
    }

    /// Append the graph to a checkpoint byte stream (sparse: only
    /// observed edges).
    pub(crate) fn export_state(&self, out: &mut Vec<u8>) {
        use crate::checkpoint::codec::{put_u32, put_u64, put_u8};
        let observed: Vec<(usize, &EdgeStats)> =
            self.edges.iter().enumerate().filter(|(_, e)| e.observed()).collect();
        put_u32(out, observed.len() as u32);
        for (i, e) in observed {
            put_u8(out, (i / N) as u8);
            put_u8(out, (i % N) as u8);
            put_u64(out, e.requests);
            put_u64(out, e.errors);
            put_u64(out, e.first_error_ts);
            put_u64(out, e.last_error_ts);
        }
    }

    /// Decode a graph previously written by [`ServiceGraph::export_state`].
    pub(crate) fn import_state(
        r: &mut crate::checkpoint::codec::Reader<'_>,
    ) -> Result<ServiceGraph, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::CheckpointError;
        let mut g = ServiceGraph::new();
        let n = r.u32()? as usize;
        if n > N * N {
            return Err(CheckpointError::Invalid("service graph edge count"));
        }
        for _ in 0..n {
            let caller = r.u8()? as usize;
            let callee = r.u8()? as usize;
            if caller >= N || callee >= N {
                return Err(CheckpointError::Invalid("service graph edge index"));
            }
            let e = &mut g.edges[caller * N + callee];
            e.requests = r.u64()?;
            e.errors = r.u64()?;
            e.first_error_ts = r.u64()?;
            e.last_error_ts = r.u64()?;
        }
        Ok(g)
    }

    /// Fold another graph's observations into this one.
    ///
    /// [`ServiceGraph::observe`] is additive per message — counts sum,
    /// `first_error_ts` is a min (with `u64::MAX` = "none yet"),
    /// `last_error_ts` a max — so when a message stream is partitioned
    /// across pipeline shards, with every message observed by exactly one
    /// shard, merging the per-shard graphs reproduces *exactly* the graph a
    /// single unsharded pass would have built. The cross-shard cascade
    /// post-pass (DESIGN.md §15) relies on this equality.
    pub fn merge(&mut self, other: &ServiceGraph) {
        for (mine, theirs) in self.edges.iter_mut().zip(&other.edges) {
            mine.requests += theirs.requests;
            mine.errors += theirs.errors;
            mine.first_error_ts = mine.first_error_ts.min(theirs.first_error_ts);
            mine.last_error_ts = mine.last_error_ts.max(theirs.last_error_ts);
        }
    }
}

/// One hop of an evidence chain, walking from the symptomatic service
/// toward the root.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct EvidenceHop {
    /// Calling service.
    pub from: Service,
    /// Called service.
    pub to: Service,
    /// Requests observed on the edge.
    pub requests: u64,
    /// Errors observed on the edge.
    pub errors: u64,
    /// Earliest diagnosis on `to` (its failure onset), when diagnosed.
    pub onset: Option<SimTime>,
}

/// Cascade attribution attached to a [`Diagnosis`] by
/// [`attribute_cascades`]. Absent (`None`) whenever no cascade structure
/// was detected — the overwhelmingly common case.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub enum Attribution {
    /// This diagnosis is on the root service of a detected cascade: fix
    /// here, the symptoms follow.
    Root {
        /// The root service.
        service: Service,
        /// Downstream services whose failures were attributed to it.
        symptoms: Vec<Service>,
    },
    /// This diagnosis is a downstream symptom of an earlier failure.
    Symptom {
        /// The symptomatic service (owner of the failing API).
        service: Service,
        /// The root service the failure was traced to.
        of: Service,
        /// Observed call path from the symptom to the root, one hop per
        /// edge, with traffic counts and failure onsets.
        evidence: Vec<EvidenceHop>,
    },
}

/// Tunables for [`attribute_cascades`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeParams {
    /// A root must have failed at least this much earlier than the
    /// symptom (onset-to-onset). Guards against labelling simultaneous
    /// failures — e.g. an infrastructure outage hitting everything at
    /// once — as a cascade.
    pub min_lead: SimTime,
    /// Maximum call-path length (edges) from symptom to root.
    pub max_hops: usize,
}

impl Default for CascadeParams {
    fn default() -> Self {
        CascadeParams { min_lead: 2_000_000, max_hops: 3 }
    }
}

/// Whether a diagnosis can anchor a cascade as its root.
///
/// An empty cause list is eligible — a partition leaves every node
/// healthy, so the far side's diagnoses carry no flat causes at all, yet
/// are exactly the root the graph walk needs to name. Two shapes are
/// not:
///
/// * **stale-only** — promoting a service to root *because data is
///   missing* would assert a conclusion from absence of evidence;
/// * **blame already redirected** — a diagnosis whose flat cause names
///   *another* service's process (e.g. Neutron API failures traced to a
///   dead `neutron-agent`) is itself downstream of that service. Flat
///   RCA has already unified the incident under one cause there; the
///   graph walk must not crown the intermediate service.
fn root_eligible(d: &Diagnosis, own: Service) -> bool {
    let substantive = d.root_causes.is_empty()
        || d.root_causes.iter().any(|rc| !matches!(rc.cause, CauseKind::StaleTelemetry { .. }));
    let blames_other = d.root_causes.iter().any(|rc| {
        matches!(rc.cause,
            CauseKind::Dependency(gretel_model::Dependency::ServiceProcess(x)) if x != own)
    });
    substantive && !blames_other
}

/// Label a run's diagnoses with cascade attribution.
///
/// For every diagnosed service `s`, the pass finds the upstream service
/// `r` (reachable from `s` along observed call edges, diagnosed at least
/// `min_lead` earlier, and [root-eligible](CauseKind::StaleTelemetry))
/// with the **earliest** failure onset, following attribution chains so a
/// three-deep cascade collapses onto its ultimate root. Diagnoses on `s`
/// become [`Attribution::Symptom`]; root-eligible diagnoses on the chosen
/// roots become [`Attribution::Root`]. Everything else keeps
/// `attribution: None`, so runs without cascade structure serialize
/// byte-identically to the flat path.
pub fn attribute_cascades(
    diagnoses: &mut [Diagnosis],
    graph: &ServiceGraph,
    catalog: &Catalog,
    params: CascadeParams,
) {
    // Failure onset and root-eligibility per diagnosed service.
    let mut onset: [Option<SimTime>; N] = [None; N];
    let mut eligible: [bool; N] = [false; N];
    for d in diagnoses.iter() {
        let svc = catalog.get(d.api).service;
        let s = svc.index() as usize;
        onset[s] = Some(onset[s].map_or(d.ts, |t: SimTime| t.min(d.ts)));
        eligible[s] |= root_eligible(d, svc);
    }

    // For each diagnosed service, the best upstream root candidate.
    let mut root_of: [Option<Service>; N] = [None; N];
    for s in Service::ALL {
        let si = s.index() as usize;
        let Some(s_onset) = onset[si] else { continue };
        let mut best: Option<(SimTime, usize, Service)> = None; // (onset, hops, svc)
        for r in Service::ALL {
            let ri = r.index() as usize;
            if ri == si || !eligible[ri] {
                continue;
            }
            let Some(r_onset) = onset[ri] else { continue };
            if r_onset.saturating_add(params.min_lead) > s_onset {
                continue;
            }
            let Some(p) = graph.path(s, r, params.max_hops) else { continue };
            let cand = (r_onset, p.len(), r);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        root_of[si] = best.map(|(_, _, r)| r);
    }

    // Collapse chains: if s → r and r → r2, s's ultimate root is r2.
    let resolve = |mut cur: Service| {
        for _ in 0..N {
            match root_of[cur.index() as usize] {
                Some(up) if up != cur => cur = up,
                _ => break,
            }
        }
        cur
    };

    // Which services ended up as roots, and of whom.
    let mut symptoms_of: [Vec<Service>; N] = std::array::from_fn(|_| Vec::new());
    for s in Service::ALL {
        if root_of[s.index() as usize].is_some() {
            let r = resolve(s);
            if r != s {
                symptoms_of[r.index() as usize].push(s);
            }
        }
    }

    for d in diagnoses.iter_mut() {
        let s = catalog.get(d.api).service;
        let si = s.index() as usize;
        if root_of[si].is_some() {
            let r = resolve(s);
            if r == s {
                continue;
            }
            // A chain-collapsed root can sit further away than one
            // candidate-search radius; allow the full collapsed depth.
            let path =
                graph.path(s, r, params.max_hops * N).unwrap_or_else(|| vec![s, r]);
            let evidence = path
                .windows(2)
                .map(|w| {
                    let e = graph.edge(w[0], w[1]);
                    EvidenceHop {
                        from: w[0],
                        to: w[1],
                        requests: e.requests,
                        errors: e.errors,
                        onset: onset[w[1].index() as usize],
                    }
                })
                .collect();
            d.attribution = Some(Attribution::Symptom { service: s, of: r, evidence });
        } else if !symptoms_of[si].is_empty() && root_eligible(d, s) {
            d.attribution =
                Some(Attribution::Root { service: s, symptoms: symptoms_of[si].clone() });
        }
    }
}

impl Attribution {
    /// Render for the diagnosis report.
    pub fn render(&self) -> String {
        match self {
            Attribution::Root { service, symptoms } => {
                let names: Vec<&str> = symptoms.iter().map(|s| s.name()).collect();
                format!(
                    "  cascade ROOT: {} — downstream symptom(s) on {}\n",
                    service.name(),
                    names.join(", ")
                )
            }
            Attribution::Symptom { service, of, evidence } => {
                let mut out = format!(
                    "  cascade SYMPTOM: {} failing downstream of {} — fix the root\n",
                    service.name(),
                    of.name()
                );
                for h in evidence {
                    let onset = match h.onset {
                        Some(t) => format!("failing since t={:.3}s", t as f64 / 1e6),
                        None => "no failures diagnosed".to_string(),
                    };
                    out.push_str(&format!(
                        "    {} -> {}: {} call(s), {} error(s), {}\n",
                        h.from.name(),
                        h.to.name(),
                        h.requests,
                        h.errors,
                        onset
                    ));
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{CaptureConfidence, FaultKind};
    use gretel_model::{ApiId, HttpMethod, MessageId, NodeId, WireKind};

    fn msg(
        src: Service,
        dst: Service,
        direction: Direction,
        ts: SimTime,
        status: Option<u16>,
    ) -> Message {
        Message {
            id: MessageId(ts),
            ts_us: ts,
            src_node: NodeId(0),
            dst_node: NodeId(1),
            src_service: src,
            dst_service: dst,
            api: ApiId(0),
            direction,
            wire: WireKind::Rest { method: HttpMethod::Get, uri: "/x".into(), status },
            conn: Default::default(),
            payload: Vec::new(),
            correlation_id: None,
            project: None,
            truth_op: None,
            truth_noise: false,
        }
    }

    fn diag(catalog: &Catalog, service: Service, ts: SimTime, causes: Vec<crate::rca::RootCause>) -> Diagnosis {
        // Any API owned by the service will do.
        let api = (0..catalog.len() as u16)
            .map(ApiId)
            .find(|&a| catalog.get(a).service == service)
            .expect("service has APIs");
        Diagnosis {
            kind: FaultKind::Operational { status: Some(500), rpc: false },
            api,
            ts,
            matched: vec![],
            theta: 1.0,
            beta_used: 8,
            candidates: 1,
            root_causes: causes,
            confidence: CaptureConfidence::Exact,
            attribution: None,
        }
    }

    fn crash_cause(service: Service) -> crate::rca::RootCause {
        crate::rca::RootCause {
            node: NodeId(3),
            cause: CauseKind::Dependency(gretel_model::Dependency::ServiceProcess(service)),
            why: format!("{} down", service.name()),
        }
    }

    fn stale_cause() -> crate::rca::RootCause {
        crate::rca::RootCause {
            node: NodeId(3),
            cause: CauseKind::StaleTelemetry { stale_resources: vec![], stale_watchers: vec![] },
            why: "telemetry went silent".into(),
        }
    }

    #[test]
    fn mining_requests_and_errors_follows_call_direction() {
        let mut g = ServiceGraph::new();
        g.observe(&msg(Service::Nova, Service::Cinder, Direction::Request, 10, None), false, false);
        // Error response travels Cinder -> Nova; the edge is Nova -> Cinder.
        g.observe(
            &msg(Service::Cinder, Service::Nova, Direction::Response, 20, Some(503)),
            false,
            true,
        );
        let e = g.edge(Service::Nova, Service::Cinder);
        assert_eq!((e.requests, e.errors), (1, 1));
        assert_eq!((e.first_error_ts, e.last_error_ts), (20, 20));
        assert!(!g.edge(Service::Cinder, Service::Nova).observed());
        // Noise never lands in the graph.
        g.observe(&msg(Service::Nova, Service::Glance, Direction::Request, 30, None), true, false);
        assert!(!g.edge(Service::Nova, Service::Glance).observed());
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn path_walks_observed_edges_only() {
        let mut g = ServiceGraph::new();
        g.observe(&msg(Service::Nova, Service::Neutron, Direction::Request, 1, None), false, false);
        g.observe(
            &msg(Service::Neutron, Service::Cinder, Direction::Request, 2, None),
            false,
            false,
        );
        assert_eq!(
            g.path(Service::Nova, Service::Cinder, 3),
            Some(vec![Service::Nova, Service::Neutron, Service::Cinder])
        );
        assert_eq!(g.path(Service::Nova, Service::Cinder, 1), None, "hop cap respected");
        assert_eq!(g.path(Service::Cinder, Service::Nova, 3), None, "edges are directed");
    }

    #[test]
    fn attribution_labels_root_and_symptom_with_evidence() {
        let catalog = Catalog::openstack();
        let mut g = ServiceGraph::new();
        g.observe(&msg(Service::Nova, Service::Cinder, Direction::Request, 1, None), false, false);
        g.observe(
            &msg(Service::Cinder, Service::Nova, Direction::Response, 2, Some(503)),
            false,
            true,
        );
        let mut ds = vec![
            diag(&catalog, Service::Cinder, 10_000_000, vec![crash_cause(Service::Cinder)]),
            diag(&catalog, Service::Nova, 20_000_000, vec![]),
        ];
        attribute_cascades(&mut ds, &g, &catalog, CascadeParams::default());
        match ds[0].attribution.as_ref().expect("root labelled") {
            Attribution::Root { service, symptoms } => {
                assert_eq!(*service, Service::Cinder);
                assert_eq!(symptoms, &vec![Service::Nova]);
            }
            other => panic!("expected Root, got {other:?}"),
        }
        match ds[1].attribution.as_ref().expect("symptom labelled") {
            Attribution::Symptom { service, of, evidence } => {
                assert_eq!((*service, *of), (Service::Nova, Service::Cinder));
                assert_eq!(evidence.len(), 1);
                assert_eq!(evidence[0].errors, 1);
                assert_eq!(evidence[0].onset, Some(10_000_000));
                assert!(ds[1].attribution.as_ref().unwrap() == &Attribution::Symptom {
                    service: Service::Nova,
                    of: Service::Cinder,
                    evidence: evidence.clone(),
                });
            }
            other => panic!("expected Symptom, got {other:?}"),
        }
        let rendered = ds[0].attribution.as_ref().unwrap().render()
            + &ds[1].attribution.as_ref().unwrap().render();
        assert!(rendered.contains("cascade ROOT: cinder"));
        assert!(rendered.contains("cascade SYMPTOM: nova"));
    }

    #[test]
    fn simultaneous_failures_are_not_a_cascade() {
        let catalog = Catalog::openstack();
        let mut g = ServiceGraph::new();
        g.observe(&msg(Service::Nova, Service::Cinder, Direction::Request, 1, None), false, false);
        let mut ds = vec![
            diag(&catalog, Service::Cinder, 10_000_000, vec![crash_cause(Service::Cinder)]),
            diag(&catalog, Service::Nova, 11_000_000, vec![]),
        ];
        attribute_cascades(&mut ds, &g, &catalog, CascadeParams::default());
        assert!(ds.iter().all(|d| d.attribution.is_none()), "1s apart < min_lead");
    }

    #[test]
    fn unreachable_earlier_failure_is_not_a_root() {
        let catalog = Catalog::openstack();
        let g = ServiceGraph::new(); // no traffic observed at all
        let mut ds = vec![
            diag(&catalog, Service::Cinder, 10_000_000, vec![crash_cause(Service::Cinder)]),
            diag(&catalog, Service::Nova, 30_000_000, vec![]),
        ];
        attribute_cascades(&mut ds, &g, &catalog, CascadeParams::default());
        assert!(ds.iter().all(|d| d.attribution.is_none()));
    }

    #[test]
    fn stale_only_services_are_never_promoted_to_root() {
        let catalog = Catalog::openstack();
        let mut g = ServiceGraph::new();
        g.observe(&msg(Service::Nova, Service::Cinder, Direction::Request, 1, None), false, false);
        let mut ds = vec![
            diag(&catalog, Service::Cinder, 10_000_000, vec![stale_cause()]),
            diag(&catalog, Service::Nova, 30_000_000, vec![]),
        ];
        attribute_cascades(&mut ds, &g, &catalog, CascadeParams::default());
        assert!(
            ds.iter().all(|d| d.attribution.is_none()),
            "stale-only upstream must not anchor a cascade"
        );
    }

    #[test]
    fn redirected_blame_is_never_promoted_to_root() {
        // The linuxbridge-agent shape: Neutron's own failures are already
        // traced by flat RCA to the dead neutron-agent process, so Neutron
        // is downstream itself and must not be crowned root of Nova's
        // later failures — the run keeps its flat-path report.
        let catalog = Catalog::openstack();
        let mut g = ServiceGraph::new();
        g.observe(&msg(Service::Nova, Service::Neutron, Direction::Request, 1, None), false, false);
        let mut ds = vec![
            diag(&catalog, Service::Neutron, 10_000_000, vec![crash_cause(Service::NeutronAgent)]),
            diag(&catalog, Service::Nova, 30_000_000, vec![crash_cause(Service::NeutronAgent)]),
        ];
        attribute_cascades(&mut ds, &g, &catalog, CascadeParams::default());
        assert!(ds.iter().all(|d| d.attribution.is_none()));
    }

    #[test]
    fn chains_collapse_onto_the_ultimate_root() {
        let catalog = Catalog::openstack();
        let mut g = ServiceGraph::new();
        // NovaCompute -> Nova -> Neutron call chain observed.
        g.observe(
            &msg(Service::NovaCompute, Service::Nova, Direction::Request, 1, None),
            false,
            false,
        );
        g.observe(&msg(Service::Nova, Service::Neutron, Direction::Request, 2, None), false, false);
        let mut ds = vec![
            diag(&catalog, Service::Neutron, 10_000_000, vec![crash_cause(Service::Neutron)]),
            diag(&catalog, Service::Nova, 20_000_000, vec![]),
            diag(&catalog, Service::NovaCompute, 30_000_000, vec![]),
        ];
        attribute_cascades(&mut ds, &g, &catalog, CascadeParams::default());
        match ds[2].attribution.as_ref().expect("depth-2 symptom labelled") {
            Attribution::Symptom { of, .. } => assert_eq!(*of, Service::Neutron),
            other => panic!("expected Symptom, got {other:?}"),
        }
        match ds[0].attribution.as_ref().expect("root labelled") {
            Attribution::Root { symptoms, .. } => {
                assert_eq!(symptoms, &vec![Service::Nova, Service::NovaCompute]);
            }
            other => panic!("expected Root, got {other:?}"),
        }
    }

    #[test]
    fn graph_state_roundtrips_through_the_codec() {
        let mut g = ServiceGraph::new();
        g.observe(&msg(Service::Nova, Service::Cinder, Direction::Request, 5, None), false, false);
        g.observe(
            &msg(Service::Cinder, Service::Nova, Direction::Response, 9, Some(500)),
            false,
            true,
        );
        let mut bytes = Vec::new();
        g.export_state(&mut bytes);
        let mut r = crate::checkpoint::codec::Reader::new(&bytes);
        let g2 = ServiceGraph::import_state(&mut r).expect("roundtrip");
        r.done().expect("fully consumed");
        assert_eq!(g, g2);
    }

    /// Regression: a corrupt or future-format snapshot whose edge index
    /// bytes exceed the N×N matrix must be rejected with a typed codec
    /// error, never used as a raw index (out-of-bounds panic pre-fix).
    #[test]
    fn corrupt_snapshot_edge_index_is_rejected() {
        let mut g = ServiceGraph::new();
        g.observe(&msg(Service::Nova, Service::Cinder, Direction::Request, 5, None), false, false);
        let mut bytes = Vec::new();
        g.export_state(&mut bytes);
        // One observed edge: the caller index is the first byte after the
        // u32 edge count. 0xFF is far beyond Service::ALL.
        for idx_byte in [4usize, 5] {
            let mut bad = bytes.clone();
            bad[idx_byte] = 0xFF;
            let mut r = crate::checkpoint::codec::Reader::new(&bad);
            let err = ServiceGraph::import_state(&mut r).expect_err("corrupt index must fail");
            assert!(matches!(
                err,
                crate::checkpoint::CheckpointError::Invalid("service graph edge index")
            ));
        }
    }

    /// Regression: an edge *count* larger than the N×N matrix is rejected
    /// up front instead of driving a multi-gigabyte read loop.
    #[test]
    fn corrupt_snapshot_edge_count_is_rejected() {
        let mut bytes = Vec::new();
        crate::checkpoint::codec::put_u32(&mut bytes, (N * N + 1) as u32);
        let mut r = crate::checkpoint::codec::Reader::new(&bytes);
        let err = ServiceGraph::import_state(&mut r).expect_err("oversized count must fail");
        assert!(matches!(
            err,
            crate::checkpoint::CheckpointError::Invalid("service graph edge count")
        ));
    }

    /// Regression: a snapshot truncated mid-edge surfaces `Truncated`, not
    /// a partial graph.
    #[test]
    fn truncated_snapshot_is_rejected() {
        let mut g = ServiceGraph::new();
        g.observe(&msg(Service::Nova, Service::Cinder, Direction::Request, 5, None), false, false);
        let mut bytes = Vec::new();
        g.export_state(&mut bytes);
        for cut in 1..bytes.len() {
            let mut r = crate::checkpoint::codec::Reader::new(&bytes[..bytes.len() - cut]);
            assert!(
                matches!(
                    ServiceGraph::import_state(&mut r),
                    Err(crate::checkpoint::CheckpointError::Truncated)
                ),
                "cut {cut} bytes: truncation must be detected"
            );
        }
    }

    #[test]
    fn merging_partitioned_observations_reproduces_the_whole() {
        // Partition a small traffic pattern over three graphs and merge:
        // the result must equal one graph observing everything.
        let msgs = [
            msg(Service::Nova, Service::Cinder, Direction::Request, 5, None),
            msg(Service::Cinder, Service::Nova, Direction::Response, 9, Some(500)),
            msg(Service::Nova, Service::Glance, Direction::Request, 11, None),
            msg(Service::Glance, Service::Nova, Direction::Response, 12, Some(200)),
            msg(Service::Cinder, Service::Nova, Direction::Response, 20, Some(500)),
        ];
        let mut whole = ServiceGraph::new();
        for (i, m) in msgs.iter().enumerate() {
            whole.observe(m, false, i == 1 || i == 4);
        }
        let mut parts = [ServiceGraph::new(), ServiceGraph::new(), ServiceGraph::new()];
        for (i, m) in msgs.iter().enumerate() {
            parts[i % 3].observe(m, false, i == 1 || i == 4);
        }
        let mut merged = ServiceGraph::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(whole, merged);
        // min/max semantics: the first/last error stamps survive no matter
        // which partition saw them.
        assert_eq!(merged.edge(Service::Nova, Service::Cinder).first_error_ts, 9);
        assert_eq!(merged.edge(Service::Nova, Service::Cinder).last_error_ts, 20);
    }
}

//! The end-to-end analyzer (Fig 3's central service).
//!
//! [`Analyzer::process`] is GRETEL's per-message hot path:
//!
//! 1. byte-scan the payload for error patterns (no JSON parsing, §5.3);
//! 2. pair requests/responses into per-API latency observations and run
//!    them through the level-shift detectors;
//! 3. push the event into the dual-buffer sliding window;
//! 4. on a REST error (or a confirmed latency anomaly), arm a snapshot;
//!    when the future half fills, run operation detection (Algorithm 2)
//!    over **every** unanalyzed error in the snapshot — RPC errors ride
//!    along with the REST error that armed it (§5.3.1 "Improving
//!    precision") — and hand the matched operations to root cause
//!    analysis (Algorithm 3).
//!
//! Root cause analysis is optional: without telemetry the analyzer still
//! detects faults and operations (that is the configuration the
//! throughput experiments run).

use crate::anomaly::{scan_message, LatencyPairer};
use crate::config::GretelConfig;
use crate::detect::{Detector, SnapshotIndex};
use crate::event::{Event, FaultMark};
use crate::fasthash::FastSet;
use crate::fingerprint::FingerprintLibrary;
use crate::perf::{PerfFault, PerfMonitor};
use crate::rca::RcaEngine;
use crate::report::{CaptureConfidence, Diagnosis, FaultKind};
use crate::window::{SlidingWindow, Snapshot};
use gretel_model::{Message, MessageId, NodeId, OperationSpec};
use gretel_sim::Deployment;
use gretel_telemetry::{LevelShiftConfig, TelemetryStore};

/// Everything RCA needs; optional on the analyzer.
#[derive(Clone, Copy)]
pub struct RcaContext<'a> {
    /// The deployment topology (service → nodes).
    pub deployment: &'a Deployment,
    /// Collected telemetry.
    pub telemetry: &'a TelemetryStore,
    /// The operation specs the library was trained on (dense by id).
    pub specs: &'a [OperationSpec],
}

/// Counters exposed for the overhead experiments (§7.4.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalyzerStats {
    /// Messages processed.
    pub messages: u64,
    /// Payload bytes scanned.
    pub bytes: u64,
    /// REST errors detected by the byte scan.
    pub rest_errors: u64,
    /// RPC errors detected by the byte scan.
    pub rpc_errors: u64,
    /// Snapshots frozen.
    pub snapshots: u64,
    /// Performance faults confirmed.
    pub perf_faults: u64,
    /// Capture-gap markers ingested (distinct places the receiver knew
    /// frames went missing).
    pub capture_gaps: u64,
    /// Total frames the receiver inferred lost across those gaps.
    pub lost_frames: u64,
}

/// The central analyzer service.
pub struct Analyzer<'a> {
    cfg: GretelConfig,
    lib: &'a FingerprintLibrary,
    rca: Option<RcaContext<'a>>,
    window: SlidingWindow,
    pairer: LatencyPairer,
    perf: PerfMonitor,
    analyzed_errors: FastSet<MessageId>,
    pending_perf: Vec<(MessageId, PerfFault)>,
    stats: AnalyzerStats,
    auto_alpha: Option<AutoAlpha>,
    pending_gap: u32,
    graph: crate::graph::ServiceGraph,
}

/// Dynamic window sizing: the paper derives α from the observed packet
/// rate (`α = 2·max{FPmax, Prate·t}`) and Prate is "the only dynamic
/// parameter affecting the value of α". This tracker re-estimates the rate
/// over a rolling interval and resizes the window accordingly.
struct AutoAlpha {
    t_secs: f64,
    interval_us: u64,
    window_start: u64,
    count: u64,
}

impl<'a> Analyzer<'a> {
    /// Analyzer without RCA (fault + operation detection only).
    pub fn new(lib: &'a FingerprintLibrary, cfg: GretelConfig) -> Analyzer<'a> {
        Self::with_perf_config(lib, cfg, LevelShiftConfig::default(), false)
    }

    /// Analyzer with explicit perf-detector settings.
    pub fn with_perf_config(
        lib: &'a FingerprintLibrary,
        cfg: GretelConfig,
        perf_cfg: LevelShiftConfig,
        keep_latency_history: bool,
    ) -> Analyzer<'a> {
        Self::with_perf_monitor(lib, cfg, PerfMonitor::new(perf_cfg, keep_latency_history))
    }

    /// Analyzer with a fully custom performance monitor (any
    /// [`gretel_telemetry::OutlierDetector`] plug-in).
    pub fn with_perf_monitor(
        lib: &'a FingerprintLibrary,
        cfg: GretelConfig,
        perf: PerfMonitor,
    ) -> Analyzer<'a> {
        Analyzer {
            window: SlidingWindow::new(cfg.alpha),
            cfg,
            lib,
            rca: None,
            pairer: LatencyPairer::new(),
            perf,
            analyzed_errors: FastSet::default(),
            pending_perf: Vec::new(),
            stats: AnalyzerStats::default(),
            auto_alpha: None,
            pending_gap: 0,
            graph: crate::graph::ServiceGraph::new(),
        }
    }

    /// Enable dynamic window sizing: every `interval` of stream time the
    /// observed packet rate re-derives α (paper §5.3.1 / §7). `t_secs` is
    /// the `t` of the α formula.
    pub fn with_auto_alpha(mut self, t_secs: f64, interval: gretel_sim::SimTime) -> Analyzer<'a> {
        assert!(t_secs > 0.0 && interval > 0);
        self.auto_alpha = Some(AutoAlpha {
            t_secs,
            interval_us: interval,
            window_start: 0,
            count: 0,
        });
        self
    }

    /// The currently configured window size α.
    pub fn alpha(&self) -> usize {
        self.window.alpha()
    }

    /// Attach root cause analysis.
    pub fn with_rca(mut self, rca: RcaContext<'a>) -> Analyzer<'a> {
        self.rca = Some(rca);
        self
    }

    /// Processing counters.
    pub fn stats(&self) -> AnalyzerStats {
        self.stats
    }

    /// The cross-service dependency graph mined from observed traffic so
    /// far. Feed it to [`crate::graph::attribute_cascades`] to label a
    /// run's diagnoses with root-vs-symptom cascade attribution.
    pub fn traffic_graph(&self) -> &crate::graph::ServiceGraph {
        &self.graph
    }

    /// Number of fingerprints in the library this analyzer matches
    /// against. Durable checkpoints record this so a restart can tell
    /// whether a checkpoint was written under a larger (hot-reloaded)
    /// library than the one it managed to load.
    pub fn library_len(&self) -> usize {
        self.lib.len()
    }

    /// Collected latency history for an API (when enabled).
    pub fn latency_history(&self, api: gretel_model::ApiId) -> &[(u64, f64)] {
        self.perf.history(api)
    }

    /// Record a capture gap: the receiver inferred `lost` frames missing
    /// just before the *next* message it will ingest. The next event
    /// entering the window carries the marker (`Event::gap_before`), which
    /// makes every snapshot spanning it a degraded-confidence snapshot.
    /// Consecutive gap reports accumulate onto the same marker.
    pub fn note_capture_gap(&mut self, lost: u32) {
        if lost == 0 {
            return;
        }
        self.stats.capture_gaps += 1;
        self.stats.lost_frames += lost as u64;
        self.pending_gap = self.pending_gap.saturating_add(lost);
    }

    /// The per-message fast path: scan, pair, window-push — everything
    /// *stateful* — and return the snapshot jobs this message completed,
    /// without analyzing them. [`Self::process`] analyzes inline; a
    /// sharded service ships the jobs to a worker pool instead (see
    /// [`crate::service::run_service_sharded`]).
    pub fn ingest(&mut self, msg: &Message) -> Vec<SnapshotJob> {
        self.ingest_observed(msg, None)
    }

    /// [`Self::ingest`] with an optional metrics registry: snapshot
    /// freezes (window stage) are counted and timed into it. The analyzer
    /// cannot hold the registry itself — its lifetime parameter is pinned
    /// to the fingerprint library — so the caller threads it through each
    /// call. Passing `None` (or a disabled registry) is the exact fast
    /// path of [`Self::ingest`].
    pub fn ingest_observed(
        &mut self,
        msg: &Message,
        metrics: Option<&gretel_obs::PipelineMetrics>,
    ) -> Vec<SnapshotJob> {
        // 1. Byte-level fault scan (never the structured fields).
        self.ingest_marked(msg, scan_message(msg), metrics)
    }

    /// [`Self::ingest_observed`] for a message whose byte scan already ran.
    ///
    /// [`scan_message`] is pure, so a batched receiver can scan a whole
    /// decoded [`gretel_netcap::FrameBatch`] in one tight loop as frames
    /// are released and hand the marks in here with the messages — the
    /// counters, window pushes and arming decisions all happen at ingest
    /// time in merge order, exactly as if the scan had run inline.
    /// `fault` **must** equal `scan_message(msg)`; anything else forks the
    /// diagnosis stream from the per-message path.
    pub fn ingest_marked(
        &mut self,
        msg: &Message,
        fault: FaultMark,
        metrics: Option<&gretel_obs::PipelineMetrics>,
    ) -> Vec<SnapshotJob> {
        self.stats.messages += 1;
        self.stats.bytes += msg.payload.len() as u64;
        match fault {
            FaultMark::RestError(_) => self.stats.rest_errors += 1,
            FaultMark::RpcError => self.stats.rpc_errors += 1,
            FaultMark::None => {}
        }

        let def = self.lib.catalog().get(msg.api);

        // Mine the cross-service dependency graph from the same observed
        // traffic: catalog noise classification, byte-scan error verdict —
        // never ground truth.
        self.graph.observe(msg, def.noise.is_some(), !matches!(fault, FaultMark::None));

        let mut ev =
            Event::new(msg, def.is_rpc(), def.is_state_change(), def.noise.is_some(), fault);
        // Attach any gap reported since the previous ingest: this event is
        // the first to arrive after the hole.
        ev.gap_before = std::mem::take(&mut self.pending_gap);

        // 2. Latency pairing → perf detectors (noise APIs excluded: their
        // cadence is fixed and uninteresting).
        let mut perf_hit: Option<PerfFault> = None;
        if !ev.noise_api {
            if let Some(obs) = self.pairer.observe(msg) {
                if let Some(pf) = self.perf.observe(obs) {
                    self.stats.perf_faults += 1;
                    perf_hit = Some(pf);
                }
            }
        }

        // Dynamic α: re-derive the window size from the observed rate.
        if let Some(auto) = &mut self.auto_alpha {
            if auto.count == 0 {
                auto.window_start = msg.ts_us;
            }
            auto.count += 1;
            let elapsed = msg.ts_us.saturating_sub(auto.window_start);
            if elapsed >= auto.interval_us {
                let rate = auto.count as f64 / (elapsed as f64 / 1e6);
                let alpha = crate::config::GretelConfig::auto(
                    self.lib.fp_max(),
                    rate,
                    auto.t_secs,
                )
                .alpha;
                self.window.resize(alpha);
                auto.window_start = msg.ts_us;
                auto.count = 0;
            }
        }

        // 3. Window push; completed snapshots become jobs (the stateful
        // part: stats, perf folding, error dedup), analyzed below. The
        // window stage meters snapshot freezes: how many windows froze and
        // how long turning each batch into jobs took.
        let snapshots = self.window.push(ev);
        let mut jobs = Vec::with_capacity(snapshots.len());
        if !snapshots.is_empty() {
            let t = gretel_obs::StageTimer::start(metrics, gretel_obs::Stage::Window);
            for snap in snapshots {
                jobs.push(self.prepare_job(snap));
            }
            if let Some(m) = metrics {
                m.count(gretel_obs::Stage::Window, jobs.len() as u64);
            }
            t.finish();
        }

        // 4. Arm new snapshots. Operational: REST errors only (§5.3.1);
        // one pending freeze at a time — errors landing inside the pending
        // future-half are analyzed together with it.
        if ev.fault.is_rest_error() && !ev.noise_api && self.window.pending() == 0 {
            self.window.arm(ev);
        }
        if let Some(pf) = perf_hit {
            if self.window.pending() == 0 {
                self.window.arm(ev);
                self.pending_perf.push((ev.id, pf));
            } else {
                // Fold into the upcoming snapshot.
                self.pending_perf.push((ev.id, pf));
            }
        }
        jobs
    }

    /// Ingest one captured message; returns diagnoses completed by it.
    pub fn process(&mut self, msg: &Message) -> Vec<Diagnosis> {
        let jobs = self.ingest(msg);
        if jobs.is_empty() {
            return Vec::new(); // the common case: nothing froze
        }
        let sa = self.snapshot_analyzer();
        jobs.iter().flat_map(|job| sa.analyze(job)).collect()
    }

    /// Flush at stream end: complete pending snapshots with the context
    /// available.
    pub fn finish(&mut self) -> Vec<Diagnosis> {
        let jobs = self.finish_jobs();
        let sa = self.snapshot_analyzer();
        jobs.iter().flat_map(|job| sa.analyze(job)).collect()
    }

    /// Stream-end counterpart of [`Self::ingest`]: flush pending snapshots
    /// into jobs without analyzing them.
    pub fn finish_jobs(&mut self) -> Vec<SnapshotJob> {
        self.finish_jobs_observed(None)
    }

    /// [`Self::finish_jobs`] with an optional metrics registry; the
    /// flushed snapshots count toward the window stage like mid-stream
    /// freezes do (see [`Self::ingest_observed`]).
    pub fn finish_jobs_observed(
        &mut self,
        metrics: Option<&gretel_obs::PipelineMetrics>,
    ) -> Vec<SnapshotJob> {
        let snaps = self.window.flush();
        let mut jobs = Vec::with_capacity(snaps.len());
        if !snaps.is_empty() {
            let t = gretel_obs::StageTimer::start(metrics, gretel_obs::Stage::Window);
            for snap in snaps {
                jobs.push(self.prepare_job(snap));
            }
            if let Some(m) = metrics {
                m.count(gretel_obs::Stage::Window, jobs.len() as u64);
            }
            t.finish();
        }
        jobs
    }

    /// A detached snapshot analyzer sharing this analyzer's library,
    /// configuration and RCA context. It borrows the *referenced* data
    /// (lifetime `'a`), not the analyzer itself, so jobs can be analyzed on
    /// other threads while the analyzer keeps ingesting.
    pub fn snapshot_analyzer(&self) -> SnapshotAnalyzer<'a> {
        SnapshotAnalyzer { cfg: self.cfg, lib: self.lib, rca: self.rca, metrics: None }
    }

    /// Serialize the analyzer's full ingest state — window, pairer, perf
    /// monitor, error dedup set, pending perf faults, stats, auto-α
    /// tracker, pending gap marker — for a checkpoint. `None` when the
    /// perf monitor holds a detector without state export (the analyzer is
    /// then not checkpointable; see
    /// [`gretel_telemetry::OutlierDetector::export_state`]).
    ///
    /// Configuration (library, [`crate::GretelConfig`], RCA context) is
    /// *not* serialized: restore targets an analyzer constructed the same
    /// way, and only replaces its dynamic state.
    pub fn export_state(&self) -> Option<Vec<u8>> {
        use crate::checkpoint::codec::{put_f64, put_u16, put_u32, put_u64, put_u8};
        let mut out = Vec::with_capacity(1024);
        self.window.export_state(&mut out);
        self.pairer.export_state(&mut out);
        if !self.perf.export_state(&mut out) {
            return None;
        }
        let mut errs: Vec<u64> = self.analyzed_errors.iter().map(|id| id.0).collect();
        errs.sort_unstable();
        put_u32(&mut out, errs.len() as u32);
        for e in errs {
            put_u64(&mut out, e);
        }
        put_u32(&mut out, self.pending_perf.len() as u32);
        for (msg_id, pf) in &self.pending_perf {
            put_u64(&mut out, msg_id.0);
            put_u16(&mut out, pf.api.0);
            put_u64(&mut out, pf.anomaly.ts);
            put_f64(&mut out, pf.anomaly.value);
            put_f64(&mut out, pf.anomaly.baseline);
            put_u8(
                &mut out,
                matches!(pf.anomaly.kind, gretel_telemetry::AnomalyKind::LevelShiftDown) as u8,
            );
        }
        for v in [
            self.stats.messages,
            self.stats.bytes,
            self.stats.rest_errors,
            self.stats.rpc_errors,
            self.stats.snapshots,
            self.stats.perf_faults,
            self.stats.capture_gaps,
            self.stats.lost_frames,
        ] {
            put_u64(&mut out, v);
        }
        match &self.auto_alpha {
            Some(a) => {
                put_u8(&mut out, 1);
                put_f64(&mut out, a.t_secs);
                put_u64(&mut out, a.interval_us);
                put_u64(&mut out, a.window_start);
                put_u64(&mut out, a.count);
            }
            None => {
                put_u8(&mut out, 0);
                put_f64(&mut out, 0.0);
                put_u64(&mut out, 0);
                put_u64(&mut out, 0);
                put_u64(&mut out, 0);
            }
        }
        put_u32(&mut out, self.pending_gap);
        self.graph.export_state(&mut out);
        Some(out)
    }

    /// Replace this analyzer's dynamic state with
    /// [`Analyzer::export_state`] bytes. The analyzer must be configured —
    /// library, config, perf factory, RCA — the same way as the one that
    /// exported; only the dynamic state transfers. All-or-nothing: on any
    /// decode error the analyzer is left unchanged.
    pub fn restore_state(
        &mut self,
        bytes: &[u8],
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        use crate::checkpoint::CheckpointError;
        let mut r = crate::checkpoint::codec::Reader::new(bytes);
        let window = SlidingWindow::import_state(&mut r)?;
        let pairer = LatencyPairer::import_state(&mut r)?;
        // Perf import mutates the monitor in place (it needs the factory),
        // so decode everything else first and only commit at the end.
        let perf_mark = r.clone();
        Self::skip_perf_state(&mut r)?;
        let n_errs = r.u32()? as usize;
        let mut analyzed_errors = FastSet::default();
        for _ in 0..n_errs {
            analyzed_errors.insert(MessageId(r.u64()?));
        }
        let n_perf = r.u32()? as usize;
        let mut pending_perf = Vec::with_capacity(n_perf);
        for _ in 0..n_perf {
            let msg_id = MessageId(r.u64()?);
            let api = gretel_model::ApiId(r.u16()?);
            let ts = r.u64()?;
            let value = r.f64()?;
            let baseline = r.f64()?;
            let kind = match r.u8()? {
                0 => gretel_telemetry::AnomalyKind::LevelShiftUp,
                1 => gretel_telemetry::AnomalyKind::LevelShiftDown,
                _ => return Err(CheckpointError::Invalid("anomaly kind")),
            };
            pending_perf.push((
                msg_id,
                PerfFault { api, anomaly: gretel_telemetry::Anomaly { ts, value, baseline, kind } },
            ));
        }
        let stats = AnalyzerStats {
            messages: r.u64()?,
            bytes: r.u64()?,
            rest_errors: r.u64()?,
            rpc_errors: r.u64()?,
            snapshots: r.u64()?,
            perf_faults: r.u64()?,
            capture_gaps: r.u64()?,
            lost_frames: r.u64()?,
        };
        let auto_tag = r.u8()?;
        let t_secs = r.f64()?;
        let interval_us = r.u64()?;
        let window_start = r.u64()?;
        let count = r.u64()?;
        let auto_alpha = match auto_tag {
            0 => None,
            1 => Some(AutoAlpha { t_secs, interval_us, window_start, count }),
            _ => return Err(CheckpointError::Invalid("auto-alpha tag")),
        };
        let pending_gap = r.u32()?;
        let graph = crate::graph::ServiceGraph::import_state(&mut r)?;
        r.done()?;

        // Everything decoded: commit, perf last (its import validates too).
        let mut perf_reader = perf_mark;
        self.perf.import_state(&mut perf_reader)?;
        self.window = window;
        self.pairer = pairer;
        self.analyzed_errors = analyzed_errors;
        self.pending_perf = pending_perf;
        self.stats = stats;
        self.auto_alpha = auto_alpha;
        self.pending_gap = pending_gap;
        self.graph = graph;
        Ok(())
    }

    /// Advance a reader past a perf-monitor state block without applying
    /// it (the block is applied separately via [`PerfMonitor::import_state`]
    /// once the rest of the analyzer state has validated).
    fn skip_perf_state(
        r: &mut crate::checkpoint::codec::Reader<'_>,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        r.u8()?; // keep_history
        let n_det = r.u32()? as usize;
        for _ in 0..n_det {
            r.u16()?;
            r.bytes()?;
        }
        let n_hist = r.u32()? as usize;
        for _ in 0..n_hist {
            r.u16()?;
            let n = r.u32()? as usize;
            for _ in 0..n {
                r.u64()?;
                r.f64()?;
            }
        }
        Ok(())
    }

    fn prepare_job(&mut self, snap: Snapshot) -> SnapshotJob {
        self.stats.snapshots += 1;
        // Performance faults folded into this snapshot.
        let perf: Vec<(MessageId, PerfFault)> = std::mem::take(&mut self.pending_perf);
        // Claim every unanalyzed error event (the REST error that armed
        // the snapshot plus any RPC/REST errors nearby). The dedup set is
        // consulted exactly here — single-threaded — so analysis itself
        // needs no shared state.
        let errors: Vec<usize> = snap
            .events
            .iter()
            .enumerate()
            .filter(|(_, ev)| ev.fault.is_error() && !ev.noise_api)
            .filter(|(_, ev)| self.analyzed_errors.insert(ev.id))
            .map(|(idx, _)| idx)
            .collect();
        SnapshotJob { snap, perf, errors }
    }
}

/// A frozen snapshot plus the receiver-side decisions that accompany it:
/// which perf faults folded into it and which error events it claimed from
/// the dedup set. Prepared by [`Analyzer::ingest`] on the capture thread;
/// analyzed — statelessly, on any thread — by [`SnapshotAnalyzer`].
#[derive(Debug, Clone)]
pub struct SnapshotJob {
    snap: Snapshot,
    perf: Vec<(MessageId, PerfFault)>,
    errors: Vec<usize>,
}

impl SnapshotJob {
    /// The frozen snapshot under analysis.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snap
    }
}

/// Per-job analysis budget for [`SnapshotAnalyzer::analyze_bounded`].
///
/// A budget bounds how much detection work a single snapshot job may
/// consume before it is cancelled. [`JobBudget::Passes`] counts per-fault
/// detection passes — a pure function of the job's contents — so the same
/// job under the same budget always cancels (or completes) identically,
/// which is what checkpoint/replay needs for byte-identical re-execution.
/// [`JobBudget::WallClock`] reads the machine clock and is therefore
/// *non-deterministic*: a replayed run may cancel different jobs than the
/// original. The recoverable service rejects it
/// ([`crate::ServiceError::NondeterministicBudget`]); it remains available
/// for interactive / best-effort pipelines that genuinely want wall-clock
/// bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobBudget {
    /// No bound: analysis always runs to completion.
    Unlimited,
    /// At most this many per-fault detection passes; the job is cancelled
    /// when the next pass would exceed the count. `Passes(0)` cancels
    /// every non-clean job immediately (deterministic stand-in for a
    /// stalled worker).
    Passes(u64),
    /// Wall-clock bound checked between detection passes. Replay-unsafe:
    /// see the type-level docs.
    WallClock(std::time::Duration),
}

impl JobBudget {
    /// True when cancellation decisions depend only on the job's contents,
    /// never on the machine clock — the property checkpoint/replay needs.
    pub fn is_deterministic(&self) -> bool {
        !matches!(self, JobBudget::WallClock(_))
    }
}

/// The stateless half of the analyzer: runs Algorithm 2 + RCA over a
/// prepared [`SnapshotJob`]. `Copy`, and borrows only the library /
/// telemetry — hand one to each worker of an analysis pool.
#[derive(Clone, Copy)]
pub struct SnapshotAnalyzer<'a> {
    cfg: GretelConfig,
    lib: &'a FingerprintLibrary,
    rca: Option<RcaContext<'a>>,
    metrics: Option<&'a gretel_obs::PipelineMetrics>,
}

impl<'a> SnapshotAnalyzer<'a> {
    /// Attach a metrics registry: analysis runs then time their detect /
    /// match / RCA stages into it. Metrics never influence the diagnoses —
    /// event counts are pure functions of the jobs, and latency values are
    /// recorded, not consulted.
    pub fn with_metrics(
        mut self,
        metrics: Option<&'a gretel_obs::PipelineMetrics>,
    ) -> SnapshotAnalyzer<'a> {
        self.metrics = metrics;
        self
    }
    /// Analyze one prepared snapshot job; pure aside from the borrowed
    /// read-only context, so calls from different threads commute.
    pub fn analyze(&self, job: &SnapshotJob) -> Vec<Diagnosis> {
        self.analyze_inner(job, JobBudget::Unlimited).expect("unlimited budget never cancels")
    }

    /// [`SnapshotAnalyzer::analyze`] under a per-job [`JobBudget`]. A job
    /// whose analysis exhausts the budget is cancelled: the second return
    /// value is `true` and every fault in the job is surfaced as a
    /// [`CaptureConfidence::Cancelled`] diagnosis (the fault is reported,
    /// never silently swallowed — but no matching evidence backs it). The
    /// budget is checked between per-fault detection passes, so a
    /// cancelled job stops within one pass of the budget instead of
    /// wedging its worker.
    pub fn analyze_bounded(&self, job: &SnapshotJob, budget: JobBudget) -> (Vec<Diagnosis>, bool) {
        match self.analyze_inner(job, budget) {
            Some(out) => (out, false),
            None => (self.cancel(job), true),
        }
    }

    /// The cancellation surface: one [`CaptureConfidence::Cancelled`]
    /// diagnosis per fault in the job, with no matching or RCA evidence.
    /// Used when a job exceeds its deadline or exhausts its crash-retry
    /// budget — the operator still learns the fault happened.
    pub fn cancel(&self, job: &SnapshotJob) -> Vec<Diagnosis> {
        let snap = &job.snap;
        let mut out = Vec::new();
        for (msg_id, pf) in &job.perf {
            let Some(idx) = snap.events.iter().position(|e| e.id == *msg_id) else {
                continue;
            };
            out.push(Diagnosis {
                kind: FaultKind::Performance {
                    observed_ms: pf.anomaly.value / 1000.0,
                    baseline_ms: pf.anomaly.baseline / 1000.0,
                },
                api: pf.api,
                ts: snap.events[idx].ts,
                matched: Vec::new(),
                theta: 0.0,
                beta_used: 0,
                candidates: 0,
                root_causes: Vec::new(),
                confidence: CaptureConfidence::Cancelled,
                attribution: None,
            });
        }
        for &idx in &job.errors {
            let ev = &snap.events[idx];
            let kind = match ev.fault {
                FaultMark::RestError(s) => FaultKind::Operational { status: Some(s), rpc: false },
                FaultMark::RpcError => FaultKind::Operational { status: None, rpc: true },
                FaultMark::None => unreachable!("jobs only claim error events"),
            };
            out.push(Diagnosis {
                kind,
                api: ev.api,
                ts: ev.ts,
                matched: Vec::new(),
                theta: 0.0,
                beta_used: 0,
                candidates: 0,
                root_causes: Vec::new(),
                confidence: CaptureConfidence::Cancelled,
                attribution: None,
            });
        }
        out
    }

    /// Shared body of [`SnapshotAnalyzer::analyze`] /
    /// [`SnapshotAnalyzer::analyze_bounded`]; `None` = budget exhausted.
    fn analyze_inner(&self, job: &SnapshotJob, budget: JobBudget) -> Option<Vec<Diagnosis>> {
        if job.perf.is_empty() && job.errors.is_empty() {
            return Some(Vec::new()); // clean snapshot: nothing to detect
        }
        // Only a wall-clock budget reads the clock; the deterministic
        // variants must never touch it (replay-stability).
        let started = matches!(budget, JobBudget::WallClock(_)).then(std::time::Instant::now);
        let mut passes: u64 = 0;
        let mut over_budget = || match budget {
            JobBudget::Unlimited => false,
            JobBudget::Passes(n) => {
                let over = passes >= n;
                passes += 1;
                over
            }
            JobBudget::WallClock(d) => started.is_some_and(|t0| t0.elapsed() > d),
        };
        let detector = Detector::new(self.lib, self.cfg);
        let snap = &job.snap;
        // One shared O(α) pass; every detection below is sub-linear in the
        // snapshot after this. The index exists to serve subsequence
        // matching, so its build time is charged to the match stage; the
        // match event count (operations matched) accrues per fault below.
        let t_match = gretel_obs::StageTimer::start(self.metrics, gretel_obs::Stage::Match);
        let sidx = SnapshotIndex::new(&snap.events);
        t_match.finish();
        // Capture quality is a property of the frozen window: any gap
        // marker inside it degrades every diagnosis made from it.
        let confidence = match (snap.gap_markers(), snap.lost_frames()) {
            (0, _) => CaptureConfidence::Exact,
            (gaps, lost) => CaptureConfidence::Degraded { gaps, lost },
        };
        let mut out = Vec::new();

        for (msg_id, pf) in &job.perf {
            if over_budget() {
                return None;
            }
            let idx = snap.events.iter().position(|e| e.id == *msg_id);
            let Some(idx) = idx else {
                continue; // anomaly's event already slid out; skip
            };
            let t = gretel_obs::StageTimer::start(self.metrics, gretel_obs::Stage::Detect);
            let outcome = detector.detect_performance_indexed(&snap.events, &sidx, pf.api);
            t.finish();
            if let Some(m) = self.metrics {
                m.count(gretel_obs::Stage::Detect, 1);
                m.count(gretel_obs::Stage::Match, outcome.matched.len() as u64);
            }
            let kind = FaultKind::Performance {
                observed_ms: pf.anomaly.value / 1000.0,
                baseline_ms: pf.anomaly.baseline / 1000.0,
            };
            out.push(self.finalize(kind, pf.api, &snap.events, snap.events[idx], outcome, confidence));
        }

        for &idx in &job.errors {
            if over_budget() {
                return None;
            }
            let ev = &snap.events[idx];
            let t = gretel_obs::StageTimer::start(self.metrics, gretel_obs::Stage::Detect);
            let outcome = detector.detect_operational_indexed(&snap.events, &sidx, idx, ev.api);
            t.finish();
            if let Some(m) = self.metrics {
                m.count(gretel_obs::Stage::Detect, 1);
                m.count(gretel_obs::Stage::Match, outcome.matched.len() as u64);
            }
            let kind = match ev.fault {
                FaultMark::RestError(s) => FaultKind::Operational { status: Some(s), rpc: false },
                FaultMark::RpcError => FaultKind::Operational { status: None, rpc: true },
                FaultMark::None => unreachable!("jobs only claim error events"),
            };
            out.push(self.finalize(kind, ev.api, &snap.events, *ev, outcome, confidence));
        }
        Some(out)
    }

    fn finalize(
        &self,
        kind: FaultKind,
        api: gretel_model::ApiId,
        events: &[Event],
        fault: Event,
        outcome: crate::detect::DetectionOutcome,
        confidence: CaptureConfidence,
    ) -> Diagnosis {
        let root_causes = match &self.rca {
            Some(ctx) => {
                let t = gretel_obs::StageTimer::start(self.metrics, gretel_obs::Stage::Rca);
                let engine = RcaEngine::new(ctx.deployment, ctx.telemetry);
                let matched_specs: Vec<&OperationSpec> = outcome
                    .matched
                    .iter()
                    .filter_map(|op| ctx.specs.get(op.index()))
                    .collect();
                let error_nodes: Vec<NodeId> = vec![fault.src_node, fault.dst_node];
                let from = events.first().map(|e| e.ts).unwrap_or(0);
                let until = events.last().map(|e| e.ts + 1).unwrap_or(1);
                let causes = engine.analyze(&matched_specs, &error_nodes, from, until);
                t.finish();
                if let Some(m) = self.metrics {
                    m.count(gretel_obs::Stage::Rca, 1);
                }
                causes
            }
            None => Vec::new(),
        };
        Diagnosis {
            kind,
            api,
            ts: fault.ts,
            matched: outcome.matched,
            theta: outcome.theta,
            beta_used: outcome.beta_used,
            candidates: outcome.candidates,
            root_causes,
            confidence,
            attribution: None,
        }
    }
}

/// Convenience: run a full message stream through an analyzer and return
/// every diagnosis.
pub fn analyze_stream<'m>(
    analyzer: &mut Analyzer<'_>,
    messages: impl IntoIterator<Item = &'m Message>,
) -> Vec<Diagnosis> {
    let mut out = Vec::new();
    for m in messages {
        out.extend(analyzer.process(m));
    }
    out.extend(analyzer.finish());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::FingerprintLibrary;
    use gretel_model::{Catalog, HttpMethod, OpSpecId, Service, Workflows};
    use gretel_sim::{
        ApiFault, FaultPlan, FaultScope, InjectedError, NoiseConfig, RunConfig, Runner,
    };
    use std::sync::Arc;

    fn setup() -> (Arc<Catalog>, Deployment, Vec<OperationSpec>, FingerprintLibrary) {
        let cat = Catalog::openstack();
        let dep = Deployment::standard();
        let wf = Workflows::new(cat.clone());
        let specs = vec![
            wf.vm_create_spec(OpSpecId(0)),
            wf.image_upload_spec(OpSpecId(1)),
            wf.cinder_list_spec(OpSpecId(2)),
        ];
        let (lib, _) = FingerprintLibrary::characterize(cat.clone(), &specs, &dep, 2, 11);
        (cat, dep, specs, lib)
    }

    #[test]
    fn detects_injected_rest_error_and_matches_operation() {
        let (cat, dep, specs, lib) = setup();
        let ports_post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        let plan = FaultPlan::none().with_api_fault(ApiFault {
            api: ports_post,
            scope: FaultScope::AllInstances,
            occurrence: 0,
            error: InjectedError::RestStatus { status: 500, reason: None },
            abort_op: true,
        });
        let cfg = RunConfig { seed: 3, noise: NoiseConfig::default(), ..RunConfig::default() };
        let refs: Vec<&OperationSpec> = specs.iter().collect();
        let exec = Runner::new(cat.clone(), &dep, &plan, cfg).run(&refs);

        let gcfg = GretelConfig { alpha: 64, ..GretelConfig::default() };
        let mut analyzer = Analyzer::new(&lib, gcfg);
        let diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());

        // The ports fault happens inside the VM create; expect at least
        // one operational diagnosis naming op 0.
        let hit = diagnoses
            .iter()
            .find(|d| matches!(d.kind, FaultKind::Operational { status: Some(500), .. }))
            .expect("operational diagnosis for the injected 500");
        assert!(hit.matched.contains(&OpSpecId(0)), "matched: {:?}", hit.matched);
        assert!(analyzer.stats().rest_errors >= 1);
    }

    #[test]
    fn clean_run_produces_no_diagnoses() {
        let (cat, dep, specs, lib) = setup();
        let plan = FaultPlan::none();
        let refs: Vec<&OperationSpec> = specs.iter().collect();
        let exec = Runner::new(
            cat,
            &dep,
            &plan,
            RunConfig { seed: 5, ..RunConfig::default() },
        )
        .run(&refs);
        let mut analyzer = Analyzer::new(&lib, GretelConfig { alpha: 64, ..Default::default() });
        let diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());
        assert!(diagnoses.is_empty(), "got {diagnoses:?}");
        assert_eq!(analyzer.stats().rest_errors, 0);
    }

    #[test]
    fn rpc_error_rides_along_with_rest_relay() {
        let (cat, dep, specs, lib) = setup();
        // An RPC *call* so the exception appears in a reply on the wire
        // (cast failures surface only via the REST relay).
        let rpc = cat.rpc_expect(Service::Neutron, "get_devices_details_list");
        let plan = FaultPlan::none().with_api_fault(ApiFault {
            api: rpc,
            scope: FaultScope::Instance(gretel_model::OpInstanceId(0)),
            occurrence: 0,
            error: InjectedError::RpcException { class: "NoValidHost".into() },
            abort_op: true,
        });
        let refs: Vec<&OperationSpec> = specs.iter().collect();
        let exec = Runner::new(
            cat,
            &dep,
            &plan,
            RunConfig { seed: 7, ..RunConfig::default() },
        )
        .run(&refs);
        let mut analyzer = Analyzer::new(&lib, GretelConfig { alpha: 64, ..Default::default() });
        let diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());
        // Both the REST relay (500) and the RPC exception analyzed.
        assert!(diagnoses
            .iter()
            .any(|d| matches!(d.kind, FaultKind::Operational { rpc: true, .. })));
        assert!(diagnoses
            .iter()
            .any(|d| matches!(d.kind, FaultKind::Operational { status: Some(500), .. })));
    }

    #[test]
    fn rca_finds_disk_exhaustion_for_image_upload() {
        let (cat, _dep, specs, lib) = setup();
        let sc = gretel_sim::scenario::failed_image_upload(&cat, 13, 2);
        let exec = sc.run(cat.clone());
        let telemetry = TelemetryStore::from_execution(&exec);
        // NOTE: the scenario has its own specs (image upload first);
        // library trained on `specs` covers the same canonical op ids 0-2.
        let mut analyzer = Analyzer::new(&lib, GretelConfig { alpha: 64, ..Default::default() })
            .with_rca(RcaContext { deployment: &sc.deployment, telemetry: &telemetry, specs: &specs });
        let diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());
        let d = diagnoses
            .iter()
            .find(|d| matches!(d.kind, FaultKind::Operational { status: Some(413), .. }))
            .expect("413 diagnosed");
        assert!(
            d.root_causes.iter().any(|rc| {
                rc.node == gretel_model::NodeId(2)
                    && matches!(rc.cause, crate::rca::CauseKind::Resource(gretel_sim::ResourceKind::DiskFreeGb))
            }),
            "causes: {:?}",
            d.root_causes
        );
    }

    #[test]
    fn empty_stream_is_a_noop() {
        let (_, _, _, lib) = setup();
        let mut analyzer = Analyzer::new(&lib, GretelConfig { alpha: 8, ..Default::default() });
        assert!(analyzer.finish().is_empty());
        assert_eq!(analyzer.stats().messages, 0);
    }

    #[test]
    fn fault_on_the_first_message_is_handled() {
        let (cat, dep, specs, lib) = setup();
        // Abort the very first step of the very first instance; the error
        // is among the earliest messages on the wire.
        let first_api = specs[0].steps[0].api;
        let plan = FaultPlan::none().with_api_fault(ApiFault {
            api: first_api,
            scope: FaultScope::Instance(gretel_model::OpInstanceId(0)),
            occurrence: 0,
            error: InjectedError::RestStatus { status: 500, reason: None },
            abort_op: true,
        });
        let refs: Vec<&OperationSpec> = specs.iter().collect();
        let exec = Runner::new(
            cat,
            &dep,
            &plan,
            RunConfig { seed: 1, start_window: 0, noise: NoiseConfig::off(), ..Default::default() },
        )
        .run(&refs);
        let mut analyzer = Analyzer::new(&lib, GretelConfig { alpha: 64, ..Default::default() });
        let diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());
        assert!(diagnoses
            .iter()
            .any(|d| matches!(d.kind, FaultKind::Operational { status: Some(500), .. })));
    }

    #[test]
    fn malformed_payloads_never_panic() {
        let (_, _, _, lib) = setup();
        let mut analyzer = Analyzer::new(&lib, GretelConfig { alpha: 8, ..Default::default() });
        let payloads: Vec<Vec<u8>> = vec![
            vec![],
            vec![0xFF; 3],
            b"HTTP/1.1 ".to_vec(),          // truncated status line
            b"HTTP/1.1 99".to_vec(),        // two digits only
            b"HTTP/1.1 ABC hello".to_vec(), // non-numeric status
            vec![0u8; 65_536],              // large zero blob
        ];
        for (i, payload) in payloads.into_iter().enumerate() {
            let msg = gretel_model::Message {
                id: gretel_model::MessageId(i as u64),
                ts_us: i as u64,
                src_node: gretel_model::NodeId(0),
                dst_node: gretel_model::NodeId(1),
                src_service: Service::Horizon,
                dst_service: Service::Nova,
                api: gretel_model::ApiId(3),
                direction: gretel_model::Direction::Response,
                wire: gretel_model::WireKind::Rest {
                    method: HttpMethod::Get,
                    uri: "/x".into(),
                    status: Some(200),
                },
                conn: gretel_model::ConnKey::default(),
                payload,
                correlation_id: None,
                project: None,
                truth_op: None,
                truth_noise: false,
            };
            let _ = analyzer.process(&msg);
        }
        let _ = analyzer.finish();
    }

    #[test]
    fn duplicate_error_messages_are_analyzed_once() {
        let (cat, dep, specs, lib) = setup();
        let ports_post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        let plan = FaultPlan::none().with_api_fault(ApiFault {
            api: ports_post,
            scope: FaultScope::AllInstances,
            occurrence: 0,
            error: InjectedError::RestStatus { status: 500, reason: None },
            abort_op: true,
        });
        let refs: Vec<&OperationSpec> = specs.iter().collect();
        let exec = Runner::new(cat, &dep, &plan, RunConfig { seed: 3, ..Default::default() })
            .run(&refs);
        let mut analyzer = Analyzer::new(&lib, GretelConfig { alpha: 32, ..Default::default() });
        // Feed the stream TWICE (e.g. an operator replaying a capture into
        // a live analyzer): the error dedup keeps each error analyzed once.
        let mut diagnoses = Vec::new();
        for m in exec.messages.iter().chain(exec.messages.iter()) {
            diagnoses.extend(analyzer.process(m));
        }
        diagnoses.extend(analyzer.finish());
        let errors_on_wire =
            exec.messages.iter().filter(|m| m.is_rest_error()).count();
        let operational = diagnoses
            .iter()
            .filter(|d| matches!(d.kind, FaultKind::Operational { .. }))
            .count();
        assert!(operational <= errors_on_wire, "{operational} <= {errors_on_wire}");
    }

    #[test]
    fn auto_alpha_tracks_the_observed_rate() {
        let (cat, dep, specs, lib) = setup();
        let refs: Vec<&OperationSpec> = specs.iter().collect();
        let exec = Runner::new(
            cat,
            &dep,
            &FaultPlan::none(),
            RunConfig { seed: 4, ..RunConfig::default() },
        )
        .run(&refs);
        let mut analyzer =
            Analyzer::new(&lib, GretelConfig { alpha: 768, ..Default::default() })
                .with_auto_alpha(1.0, gretel_sim::SECOND);
        for m in &exec.messages {
            analyzer.process(m);
        }
        // The low-rate stream shrinks the window toward 2·FPmax.
        let alpha = analyzer.alpha();
        assert!(alpha < 768, "alpha adapted down: {alpha}");
        assert!(alpha >= 2 * lib.fp_max().min(400), "alpha floored by FPmax: {alpha}");
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let (cat, dep, specs, lib) = setup();
        let refs: Vec<&OperationSpec> = specs.iter().collect();
        let exec = Runner::new(
            cat,
            &dep,
            &FaultPlan::none(),
            RunConfig { seed: 1, ..RunConfig::default() },
        )
        .run(&refs);
        let mut analyzer = Analyzer::new(&lib, GretelConfig { alpha: 64, ..Default::default() });
        analyze_stream(&mut analyzer, exec.messages.iter());
        assert_eq!(analyzer.stats().messages as usize, exec.messages.len());
        assert_eq!(analyzer.stats().bytes as usize, exec.total_payload_bytes());
    }

    #[test]
    fn checkpoint_mid_stream_resumes_identically() {
        let (cat, dep, specs, lib) = setup();
        let ports_post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        let plan = FaultPlan::none().with_api_fault(ApiFault {
            api: ports_post,
            scope: FaultScope::AllInstances,
            occurrence: 0,
            error: InjectedError::RestStatus { status: 500, reason: None },
            abort_op: true,
        });
        let refs: Vec<&OperationSpec> = specs.iter().collect();
        let exec = Runner::new(cat, &dep, &plan, RunConfig { seed: 3, ..Default::default() })
            .run(&refs);
        let cfg = GretelConfig { alpha: 32, ..GretelConfig::default() };

        // Uninterrupted reference run.
        let mut reference = Analyzer::new(&lib, cfg);
        let ref_diag = analyze_stream(&mut reference, exec.messages.iter());

        // Checkpoint halfway, restore into a FRESH analyzer, replay the rest.
        let split = exec.messages.len() / 2;
        let mut first = Analyzer::new(&lib, cfg);
        let mut live = Vec::new();
        for m in &exec.messages[..split] {
            live.extend(first.process(m));
        }
        let state = first.export_state().expect("default detector checkpoints");
        let mut resumed = Analyzer::new(&lib, cfg);
        resumed.restore_state(&state).expect("state restores");
        for m in &exec.messages[split..] {
            live.extend(resumed.process(m));
        }
        live.extend(resumed.finish());

        assert_eq!(live.len(), ref_diag.len());
        for (a, b) in live.iter().zip(&ref_diag) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.api, b.api);
            assert_eq!(a.ts, b.ts);
            assert_eq!(a.matched, b.matched);
            assert_eq!(a.confidence, b.confidence);
        }
        assert_eq!(resumed.stats().messages, reference.stats().messages);
        assert_eq!(resumed.stats().rest_errors, reference.stats().rest_errors);
        assert_eq!(resumed.stats().snapshots, reference.stats().snapshots);
    }

    #[test]
    fn restore_rejects_garbage_state() {
        let (_, _, _, lib) = setup();
        let mut analyzer = Analyzer::new(&lib, GretelConfig { alpha: 8, ..Default::default() });
        assert!(analyzer.restore_state(&[0xFF; 16]).is_err());
        assert!(analyzer.restore_state(&[]).is_err());
        // A failed restore leaves the analyzer usable.
        assert!(analyzer.finish().is_empty());
    }

    #[test]
    fn bounded_analysis_cancels_past_budget() {
        let (cat, dep, specs, lib) = setup();
        let ports_post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        let plan = FaultPlan::none().with_api_fault(ApiFault {
            api: ports_post,
            scope: FaultScope::AllInstances,
            occurrence: 0,
            error: InjectedError::RestStatus { status: 500, reason: None },
            abort_op: true,
        });
        let refs: Vec<&OperationSpec> = specs.iter().collect();
        let exec = Runner::new(cat, &dep, &plan, RunConfig { seed: 3, ..Default::default() })
            .run(&refs);
        let mut analyzer = Analyzer::new(&lib, GretelConfig { alpha: 32, ..Default::default() });
        let mut jobs = Vec::new();
        for m in &exec.messages {
            jobs.extend(analyzer.ingest(m));
        }
        jobs.extend(analyzer.finish_jobs());
        let job = jobs
            .iter()
            .find(|j| !j.snapshot().events.is_empty())
            .expect("faulted run produces jobs");
        let sa = analyzer.snapshot_analyzer();

        // An unlimited budget completes normally…
        let (full, cancelled) = sa.analyze_bounded(job, JobBudget::Unlimited);
        assert!(!cancelled);
        assert_eq!(full, sa.analyze(job));

        // …as does a pass budget large enough for every fault in the job…
        let (full2, cancelled) = sa.analyze_bounded(job, JobBudget::Passes(1 << 20));
        assert!(!cancelled);
        assert_eq!(full2, full);

        // …but a zero-pass budget cancels, and every fault still surfaces —
        // honestly marked, never as Exact.
        let (out, cancelled) = sa.analyze_bounded(job, JobBudget::Passes(0));
        assert!(cancelled);
        assert!(!out.is_empty(), "cancelled job still reports its faults");
        for d in &out {
            assert_eq!(d.confidence, CaptureConfidence::Cancelled);
            assert!(d.matched.is_empty() && d.root_causes.is_empty());
        }

        // Regression: cancellation under a deterministic budget is a pure
        // function of the job — repeated runs agree bit-for-bit, which the
        // old Instant-based deadline could not guarantee.
        for budget in [JobBudget::Passes(0), JobBudget::Passes(1), JobBudget::Passes(2)] {
            let a = sa.analyze_bounded(job, budget);
            let b = sa.analyze_bounded(job, budget);
            assert_eq!(a, b, "budget {budget:?} must be replay-stable");
        }

        // The wall-clock variant still exists for best-effort pipelines but
        // self-reports as non-deterministic.
        assert!(!JobBudget::WallClock(std::time::Duration::ZERO).is_deterministic());
        assert!(JobBudget::Unlimited.is_deterministic());
        assert!(JobBudget::Passes(7).is_deterministic());
        let (out, cancelled) =
            sa.analyze_bounded(job, JobBudget::WallClock(std::time::Duration::ZERO));
        assert!(cancelled);
        assert!(out.iter().all(|d| d.confidence == CaptureConfidence::Cancelled));
    }
}

//! Byte-level fault scanning and latency pairing.
//!
//! GRETEL "does not parse the JSON formatted message body and simply uses
//! regular expressions to identify error codes in the message" (§5.3).
//! This module is that fast path: fixed byte-pattern scans over raw
//! payloads (no allocation, no parsing), plus the request/response pairing
//! that turns message timestamps into per-API latency observations —
//! REST pairs by TCP connection metadata, RPC pairs by message id.

use crate::event::FaultMark;
use crate::fasthash::FastMap;
use gretel_model::{ApiId, ConnKey, Message, WireKind};
use gretel_sim::SimTime;

/// Scan an HTTP payload for an error status line (`HTTP/1.1 NNN` with
/// `NNN >= 400`). Returns the status when found.
pub fn scan_rest_error(payload: &[u8]) -> Option<u16> {
    const PREFIX: &[u8] = b"HTTP/1.1 ";
    if payload.len() < PREFIX.len() + 3 || &payload[..PREFIX.len()] != PREFIX {
        return None;
    }
    let d = &payload[PREFIX.len()..PREFIX.len() + 3];
    if !d.iter().all(u8::is_ascii_digit) {
        return None;
    }
    let status = (d[0] - b'0') as u16 * 100 + (d[1] - b'0') as u16 * 10 + (d[2] - b'0') as u16;
    (status >= 400).then_some(status)
}

/// Scan an oslo.messaging payload for a serialized exception. oslo embeds
/// failures as a `"failure"` object; the scan is a substring search
/// anchored on the needle's rarest byte (`f` — JSON payloads are dense in
/// quotes but sparse in `f`s), located with a word-at-a-time byte scan.
/// The common clean-payload case touches each byte once, eight at a time,
/// instead of comparing a 9-byte window at every offset.
pub fn scan_rpc_error(payload: &[u8]) -> bool {
    const NEEDLE: &[u8] = b"\"failure\"";
    if payload.len() < NEEDLE.len() {
        return false;
    }
    let mut i = 1; // the anchor byte sits at offset 1 of the needle
    while let Some(off) = find_byte(&payload[i..], b'f') {
        let start = i + off - 1;
        if payload.len() - start >= NEEDLE.len() && &payload[start..start + NEEDLE.len()] == NEEDLE
        {
            return true;
        }
        i += off + 1;
    }
    false
}

/// The whole byte-level fault scan for one message, as a pure function:
/// REST payloads go through [`scan_rest_error`], RPC payloads through the
/// SWAR [`scan_rpc_error`]. No state, no counters — the same message
/// always scans to the same [`FaultMark`], so the scan can run anywhere
/// in the pipeline (at batch decode, at ingest, or re-derived after a
/// checkpoint restore) without changing the diagnosis stream.
///
/// The batched receiver runs this over every message of a decoded
/// [`gretel_netcap::FrameBatch`] in one tight loop, so the scanners stay
/// hot in cache across the batch instead of interleaving with window and
/// merge work per message.
///
/// ```
/// use gretel_core::{scan_message, FaultMark};
/// # use gretel_model::*;
/// # let mut msg = Message {
/// #     id: MessageId(1), ts_us: 0, src_node: NodeId(0), dst_node: NodeId(1),
/// #     src_service: Service::Nova, dst_service: Service::Neutron, api: ApiId(1),
/// #     direction: Direction::Response,
/// #     wire: WireKind::Rest { method: HttpMethod::Get, uri: "/v2.1/servers".into(), status: None },
/// #     conn: ConnKey::default(), payload: vec![], correlation_id: None, project: None, truth_op: None,
/// #     truth_noise: false,
/// # };
/// msg.payload = b"HTTP/1.1 503 Service Unavailable".to_vec();
/// assert_eq!(scan_message(&msg), FaultMark::RestError(503));
/// msg.payload = b"HTTP/1.1 200 OK".to_vec();
/// assert_eq!(scan_message(&msg), FaultMark::None);
/// ```
pub fn scan_message(msg: &Message) -> FaultMark {
    match &msg.wire {
        WireKind::Rest { .. } => match scan_rest_error(&msg.payload) {
            Some(status) => FaultMark::RestError(status),
            None => FaultMark::None,
        },
        WireKind::Rpc { .. } => {
            if scan_rpc_error(&msg.payload) {
                FaultMark::RpcError
            } else {
                FaultMark::None
            }
        }
    }
}

/// First position of `b` in `hay`, scanning a 64-bit word per step (the
/// usual SWAR zero-byte trick).
#[inline]
fn find_byte(hay: &[u8], b: u8) -> Option<usize> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    let pat = (b as u64) * LO;
    let mut chunks = hay.chunks_exact(8);
    let mut base = 0usize;
    for c in chunks.by_ref() {
        let w = u64::from_le_bytes(c.try_into().unwrap()) ^ pat;
        if w.wrapping_sub(LO) & !w & HI != 0 {
            for (j, &x) in c.iter().enumerate() {
                if x == b {
                    return Some(base + j);
                }
            }
        }
        base += 8;
    }
    chunks.remainder().iter().position(|&x| x == b).map(|j| base + j)
}

/// One latency observation produced by pairing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyObs {
    /// The API measured.
    pub api: ApiId,
    /// Response timestamp (the observation's time coordinate).
    pub ts: SimTime,
    /// Request→response latency in microseconds.
    pub latency_us: u64,
}

/// Pairs REST requests with responses via connection metadata and RPCs via
/// message ids, emitting [`LatencyObs`] as responses arrive.
#[derive(Debug, Default)]
pub struct LatencyPairer {
    rest: FastMap<(ConnKey, ApiId), SimTime>,
    rpc: FastMap<u64, (ApiId, SimTime)>,
}

impl LatencyPairer {
    /// Empty pairer.
    pub fn new() -> LatencyPairer {
        LatencyPairer::default()
    }

    /// Feed one message; returns a latency observation when it completes a
    /// pair.
    pub fn observe(&mut self, msg: &Message) -> Option<LatencyObs> {
        match (&msg.wire, msg.direction) {
            (WireKind::Rest { .. }, gretel_model::Direction::Request) => {
                self.rest.insert((msg.conn.canonical(), msg.api), msg.ts_us);
                None
            }
            (WireKind::Rest { .. }, gretel_model::Direction::Response) => {
                let start = self.rest.remove(&(msg.conn.canonical(), msg.api))?;
                Some(LatencyObs {
                    api: msg.api,
                    ts: msg.ts_us,
                    latency_us: msg.ts_us.saturating_sub(start),
                })
            }
            (WireKind::Rpc { msg_id, .. }, gretel_model::Direction::Request) => {
                self.rpc.insert(*msg_id, (msg.api, msg.ts_us));
                None
            }
            (WireKind::Rpc { msg_id, .. }, gretel_model::Direction::Response) => {
                let (api, start) = self.rpc.remove(msg_id)?;
                Some(LatencyObs {
                    api,
                    ts: msg.ts_us,
                    latency_us: msg.ts_us.saturating_sub(start),
                })
            }
        }
    }

    /// Outstanding unpaired requests (useful for leak checks).
    pub fn outstanding(&self) -> usize {
        self.rest.len() + self.rpc.len()
    }

    /// Drop unpaired requests older than `cutoff` (casts never get replies
    /// and would otherwise accumulate).
    pub fn expire_before(&mut self, cutoff: SimTime) {
        self.rest.retain(|_, &mut ts| ts >= cutoff);
        self.rpc.retain(|_, &mut (_, ts)| ts >= cutoff);
    }

    /// Serialize all outstanding unpaired requests for a checkpoint.
    /// Entries are written in sorted key order so the bytes are a pure
    /// function of the pairer's logical state, not of hash iteration.
    pub(crate) fn export_state(&self, out: &mut Vec<u8>) {
        use crate::checkpoint::codec::{put_u16, put_u32, put_u64, put_u8};
        let mut rest: Vec<(&(ConnKey, ApiId), &SimTime)> = self.rest.iter().collect();
        rest.sort_by_key(|((c, a), _)| (c.src.0, c.src_port, c.dst.0, c.dst_port, a.0));
        put_u32(out, rest.len() as u32);
        for ((conn, api), &ts) in rest {
            put_u8(out, conn.src.0);
            put_u16(out, conn.src_port);
            put_u8(out, conn.dst.0);
            put_u16(out, conn.dst_port);
            put_u16(out, api.0);
            put_u64(out, ts);
        }
        let mut rpc: Vec<(&u64, &(ApiId, SimTime))> = self.rpc.iter().collect();
        rpc.sort_by_key(|(&id, _)| id);
        put_u32(out, rpc.len() as u32);
        for (&msg_id, &(api, ts)) in rpc {
            put_u64(out, msg_id);
            put_u16(out, api.0);
            put_u64(out, ts);
        }
    }

    /// Rebuild a pairer from [`LatencyPairer::export_state`] bytes.
    pub(crate) fn import_state(
        r: &mut crate::checkpoint::codec::Reader<'_>,
    ) -> Result<LatencyPairer, crate::checkpoint::CheckpointError> {
        use gretel_model::NodeId;
        let mut pairer = LatencyPairer::new();
        let n_rest = r.u32()? as usize;
        for _ in 0..n_rest {
            let conn = ConnKey {
                src: NodeId(r.u8()?),
                src_port: r.u16()?,
                dst: NodeId(r.u8()?),
                dst_port: r.u16()?,
            };
            let api = ApiId(r.u16()?);
            let ts = r.u64()?;
            pairer.rest.insert((conn, api), ts);
        }
        let n_rpc = r.u32()? as usize;
        for _ in 0..n_rpc {
            let msg_id = r.u64()?;
            let api = ApiId(r.u16()?);
            let ts = r.u64()?;
            pairer.rpc.insert(msg_id, (api, ts));
        }
        Ok(pairer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gretel_model::message::{
        render_rest_request_payload, render_rest_response_payload, render_rpc_payload,
    };
    use gretel_model::{
        ApiId, ConnKey, Direction, HttpMethod, Message, MessageId, NodeId, Service,
    };

    #[test]
    fn rest_error_scan_finds_4xx_and_5xx() {
        for status in [400u16, 401, 404, 409, 413, 500, 503] {
            let p = render_rest_response_payload(status, "x", 32);
            assert_eq!(scan_rest_error(&p), Some(status), "status {status}");
        }
    }

    #[test]
    fn rest_success_and_requests_scan_clean() {
        for status in [200u16, 201, 202, 204] {
            let p = render_rest_response_payload(status, "OK", 32);
            assert_eq!(scan_rest_error(&p), None);
        }
        let req = render_rest_request_payload(HttpMethod::Get, "/v2.1/servers", 0);
        assert_eq!(scan_rest_error(&req), None);
        assert_eq!(scan_rest_error(b""), None);
        assert_eq!(scan_rest_error(b"HTTP/1.1 XYZ"), None);
    }

    #[test]
    fn rpc_scan_finds_the_needle_at_any_alignment() {
        // The word-at-a-time scan must agree with a naive scan regardless
        // of where the needle sits relative to 8-byte chunk boundaries.
        for pad in 0..32 {
            let mut p = vec![b'x'; pad];
            p.extend_from_slice(b"\"failure\"");
            p.extend_from_slice(&[b'x'; 16]);
            assert!(scan_rpc_error(&p), "pad {pad}");

            // Anchor bytes everywhere but no needle.
            let mut clean = vec![b'f'; pad + 16];
            assert!(!scan_rpc_error(&clean), "pad {pad}");
            // A needle clipped at the end must not match.
            clean.extend_from_slice(b"\"failure");
            assert!(!scan_rpc_error(&clean), "pad {pad}");
        }
    }

    #[test]
    fn rpc_error_scan() {
        let bad = render_rpc_payload("create_volume", 7, Some("Boom"), 64);
        let good = render_rpc_payload("create_volume", 8, None, 64);
        assert!(scan_rpc_error(&bad));
        assert!(!scan_rpc_error(&good));
    }

    fn rest_msg(id: u64, ts: u64, dir: Direction, conn: ConnKey) -> Message {
        Message {
            id: MessageId(id),
            ts_us: ts,
            src_node: conn.src,
            dst_node: conn.dst,
            src_service: Service::Horizon,
            dst_service: Service::Nova,
            api: ApiId(9),
            direction: dir,
            wire: WireKind::Rest {
                method: HttpMethod::Get,
                uri: "/v2.1/servers".into(),
                status: matches!(dir, Direction::Response).then_some(200),
            },
            conn,
            payload: vec![],
            correlation_id: None,
            project: None,
            truth_op: None,
            truth_noise: false,
        }
    }

    #[test]
    fn rest_pairing_by_connection() {
        let mut p = LatencyPairer::new();
        let conn = ConnKey { src: NodeId(0), src_port: 31000, dst: NodeId(1), dst_port: 8774 };
        assert!(p.observe(&rest_msg(0, 1_000, Direction::Request, conn)).is_none());
        let obs = p
            .observe(&rest_msg(1, 26_000, Direction::Response, conn.reversed()))
            .expect("pair completes");
        assert_eq!(obs.latency_us, 25_000);
        assert_eq!(obs.api, ApiId(9));
        assert_eq!(p.outstanding(), 0);
    }

    #[test]
    fn rpc_pairing_by_msg_id() {
        let mut p = LatencyPairer::new();
        let mk = |id: u64, ts: u64, dir: Direction| Message {
            id: MessageId(id),
            ts_us: ts,
            src_node: NodeId(4),
            dst_node: NodeId(0),
            src_service: Service::NovaCompute,
            dst_service: Service::Nova,
            api: ApiId(700),
            direction: dir,
            wire: WireKind::Rpc { method: "attach_volume".into(), msg_id: 55, error: None },
            conn: ConnKey::default(),
            payload: vec![],
            correlation_id: None,
            project: None,
            truth_op: None,
            truth_noise: false,
        };
        assert!(p.observe(&mk(0, 5_000, Direction::Request)).is_none());
        let obs = p.observe(&mk(1, 65_000, Direction::Response)).unwrap();
        assert_eq!(obs.latency_us, 60_000);
    }

    #[test]
    fn unmatched_response_is_ignored() {
        let mut p = LatencyPairer::new();
        let conn = ConnKey { src: NodeId(0), src_port: 1, dst: NodeId(1), dst_port: 2 };
        assert!(p.observe(&rest_msg(0, 10, Direction::Response, conn)).is_none());
    }

    #[test]
    fn expire_drops_stale_requests() {
        let mut p = LatencyPairer::new();
        let conn = ConnKey { src: NodeId(0), src_port: 1, dst: NodeId(1), dst_port: 2 };
        p.observe(&rest_msg(0, 10, Direction::Request, conn));
        assert_eq!(p.outstanding(), 1);
        p.expire_before(1_000);
        assert_eq!(p.outstanding(), 0);
    }
}

#!/usr/bin/env bash
# Markdown hygiene gate. Two checks, zero dependencies beyond POSIX tools:
#
#  1. every intra-repo markdown link `[text](path)` in the curated docs
#     resolves to a file or directory that exists (anchors and external
#     URLs are skipped);
#  2. every JSON artifact under results/ is referenced from README.md or
#     EXPERIMENTS.md — an experiment whose output nobody can find from
#     the docs is an experiment that effectively doesn't exist.
#
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1. intra-repo links -------------------------------------------------
# The curated doc set: everything a reader is routed through. Scratch
# files (ISSUE.md, SNIPPETS.md, PAPERS.md) are not part of the contract.
DOCS=(README.md EXPERIMENTS.md DESIGN.md ARCHITECTURE.md ROADMAP.md results/README.md)

for doc in "${DOCS[@]}"; do
  [ -f "$doc" ] || { echo "md_hygiene: missing doc $doc"; fail=1; continue; }
  dir=$(dirname "$doc")
  # Inline links only: [text](target). Reference-style links are not used
  # in this repo. One link per line via grep -o.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    # Strip a trailing #anchor from relative links.
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "md_hygiene: $doc links to missing path: $target"
      fail=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/.*(\(.*\))/\1/')
done

# --- 2. results artifacts are documented ---------------------------------
for artifact in results/*.json; do
  [ -e "$artifact" ] || continue
  name=$(basename "$artifact")
  if ! grep -q "$name" README.md EXPERIMENTS.md; then
    echo "md_hygiene: $artifact is referenced by neither README.md nor EXPERIMENTS.md"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "md_hygiene: FAILED"
  exit 1
fi
echo "md_hygiene: ok"

#!/usr/bin/env bash
# Tier-1 verification, exactly as ROADMAP.md specifies, pinned offline:
# every dependency is vendored under vendor/, so a network-less container
# must build and test clean. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace

# Rustdoc must stay warning-free for the first-party crates, and the
# runnable doc-examples are part of the test surface.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline \
  -p gretel -p gretel-core -p gretel-model -p gretel-netcap \
  -p gretel-sim -p gretel-telemetry -p gretel-bench -p gretel-hansel
cargo test -q --offline --doc --workspace

#!/usr/bin/env bash
# Tier-1 verification, exactly as ROADMAP.md specifies, pinned offline:
# every dependency is vendored under vendor/, so a network-less container
# must build and test clean. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace

# Lint gate: the workspace (all targets — libs, bins, tests, examples)
# must be clippy-clean.
cargo clippy --offline --all-targets -- -D warnings

# The chaos feature (test-only corruption hooks compiled into non-test
# builds) has no default consumer; keep it compiling and lint-clean.
cargo clippy --offline -p gretel-core --features chaos --all-targets -- -D warnings

# Crash-recovery smoke: one §7.2 scenario under worker kills, scheduled
# service crashes, store corruption, plus FileStore-backed whole-process
# kill/restart arms (clean tail and torn tail); asserts zero diagnoses
# lost/duplicated and byte-identical output (see EXPERIMENTS.md). The
# durable arms persist segments under an explicit tmpdir cleaned on exit.
RECOVERY_STORE_DIR="$(mktemp -d)"
trap 'rm -rf "$RECOVERY_STORE_DIR"' EXIT
cargo run --release --offline -q -p gretel-bench --bin recovery -- \
  --smoke --store-dir "$RECOVERY_STORE_DIR"

# Tenant-sharded soak smoke: multi-tenant traffic through 1/2/4/8
# pipeline shards plus a FileStore-per-shard durable arm; asserts the
# merged diagnosis stream is byte-identical to the unsharded analyzer at
# every shard count and that peak RSS stays bounded (see EXPERIMENTS.md).
# Does not clobber results/soak.json; journals live under a tmpdir
# cleaned by the same EXIT trap as the recovery stores.
SOAK_STORE_DIR="$(mktemp -d)"
trap 'rm -rf "$RECOVERY_STORE_DIR" "$SOAK_STORE_DIR"' EXIT
cargo run --release --offline -q -p gretel-bench --bin soak -- \
  --smoke --store-dir "$SOAK_STORE_DIR"

# Observability smoke: one §7.2 scenario with metrics off/disabled/enabled;
# asserts identical diagnoses, deterministic snapshots, export round trips
# and the instrumentation overhead gate (see EXPERIMENTS.md).
cargo run --release --offline -q -p gretel-bench --bin observability -- --smoke

# Failure-propagation smoke: one cascade scenario through the state-graph
# root-vs-symptom post-pass (perfect attribution asserted), one §7.2
# scenario re-run through the graph path as a byte-identity oracle, and a
# replay-determinism check (see EXPERIMENTS.md). Does not clobber
# results/propagation.json.
cargo run --release --offline -q -p gretel-bench --bin propagation -- --smoke

# Markdown hygiene: intra-repo links resolve and every results/*.json
# artifact is reachable from README.md or EXPERIMENTS.md.
scripts/md_hygiene.sh

# Rustdoc must stay warning-free for the first-party crates, and the
# runnable doc-examples are part of the test surface.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline \
  -p gretel -p gretel-core -p gretel-model -p gretel-netcap \
  -p gretel-sim -p gretel-telemetry -p gretel-bench -p gretel-hansel \
  -p gretel-obs -p gretel-store
cargo test -q --offline --doc --workspace

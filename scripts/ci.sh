#!/usr/bin/env bash
# Tier-1 verification, exactly as ROADMAP.md specifies, pinned offline:
# every dependency is vendored under vendor/, so a network-less container
# must build and test clean. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace

//! Integration: the §3.1 / §7.2 case studies reach the paper's root
//! causes through the full pipeline.

use gretel::prelude::*;
use gretel::sim::scenario::{
    failed_image_upload, linuxbridge_crash, mysql_outage, neutron_api_latency,
    no_compute_available, ntp_failure, rabbitmq_outage, Scenario,
};
use gretel::sim::ExpectedCause;
use gretel::telemetry::LevelShiftConfig;

fn root_cause_found(sc: &Scenario, catalog: &std::sync::Arc<Catalog>) -> bool {
    let (library, _) =
        FingerprintLibrary::characterize(catalog.clone(), &sc.specs, &sc.deployment, 2, 7);
    let exec = sc.run(catalog.clone());
    let telemetry = TelemetryStore::from_execution(&exec);
    let ls = LevelShiftConfig { baseline_window: 20, test_window: 4, ..Default::default() };
    let mut analyzer =
        gretel::core::Analyzer::with_perf_config(&library, GretelConfig::default(), ls, false)
            .with_rca(RcaContext {
                deployment: &sc.deployment,
                telemetry: &telemetry,
                specs: &sc.specs,
            });
    let diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());
    diagnoses.iter().flat_map(|d| &d.root_causes).any(|rc| match &sc.expected_cause {
        ExpectedCause::Resource(node, kind) => {
            rc.node == *node && matches!(&rc.cause, CauseKind::Resource(k) if k == kind)
        }
        ExpectedCause::Dependency(node, dep) => {
            rc.node == *node && matches!(&rc.cause, CauseKind::Dependency(d) if d == dep)
        }
    })
}

#[test]
fn failed_image_upload_finds_full_disk() {
    let catalog = Catalog::openstack();
    assert!(root_cause_found(&failed_image_upload(&catalog, 1, 4), &catalog));
}

#[test]
fn neutron_latency_finds_cpu_surge() {
    let catalog = Catalog::openstack();
    assert!(root_cause_found(&neutron_api_latency(&catalog, 2, 60), &catalog));
}

#[test]
fn linuxbridge_crash_finds_dead_agent() {
    let catalog = Catalog::openstack();
    assert!(root_cause_found(&linuxbridge_crash(&catalog, 3, 4), &catalog));
}

#[test]
fn ntp_failure_found_upstream_of_the_error() {
    let catalog = Catalog::openstack();
    assert!(root_cause_found(&ntp_failure(&catalog, 4, 4), &catalog));
}

#[test]
fn no_compute_available_finds_dead_nova_compute() {
    let catalog = Catalog::openstack();
    assert!(root_cause_found(&no_compute_available(&catalog, 5, 4), &catalog));
}

#[test]
fn mysql_outage_finds_unreachable_database() {
    let catalog = Catalog::openstack();
    assert!(root_cause_found(&mysql_outage(&catalog, 6, 4), &catalog));
}

#[test]
fn rabbitmq_outage_finds_unreachable_broker() {
    let catalog = Catalog::openstack();
    assert!(root_cause_found(&rabbitmq_outage(&catalog, 7, 4), &catalog));
}

#[test]
fn limitation5_interference_names_the_operation_but_finds_no_cause() {
    use gretel::sim::scenario::interfering_operations;
    // The honest negative: GRETEL identifies WHAT failed but — as the
    // paper's Limitation 5 states — cannot explain faults caused by
    // causally interfering operations, because no node state is anomalous.
    let catalog = Catalog::openstack();
    let sc = interfering_operations(&catalog, 9, 3);
    let (library, _) =
        FingerprintLibrary::characterize(catalog.clone(), &sc.specs, &sc.deployment, 2, 7);
    let exec = sc.run(catalog.clone());
    let telemetry = TelemetryStore::from_execution(&exec);
    let mut analyzer = gretel::core::Analyzer::new(&library, GretelConfig::default())
        .with_rca(RcaContext {
            deployment: &sc.deployment,
            telemetry: &telemetry,
            specs: &sc.specs,
        });
    let diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());
    let d = diagnoses
        .iter()
        .find(|d| matches!(d.kind, FaultKind::Operational { status: Some(404), .. }))
        .expect("the 404 is diagnosed");
    assert!(d.matched.contains(&OpSpecId(0)), "the failed operation is named");
    assert!(d.root_causes.is_empty(), "but no node-state root cause exists: {:?}", d.root_causes);
}

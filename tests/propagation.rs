//! Integration: failure-propagation cascades through the full pipeline.
//!
//! The state-graph post-pass must (a) name the root service of a cascade
//! and mark downstream failures as symptoms, (b) never promote a service
//! to root when the only evidence from its fault window is stale
//! telemetry, and (c) leave non-cascade runs byte-identical to the flat
//! RCA path.

use std::sync::Arc;

use gretel::core::graph::{attribute_cascades, Attribution, CascadeParams};
use gretel::prelude::*;
use gretel::sim::cascade::{cinder_crash_cascade, partition_split_cascade, CascadeScenario};
use gretel::sim::scenario::{failed_image_upload, rabbitmq_outage};
use gretel::sim::secs;
use gretel::telemetry::TelemetryStore;

/// Run a cascade scenario through the full pipeline and return its
/// diagnoses *after* the graph post-pass, serialized alongside.
fn diagnose(
    sc: &CascadeScenario,
    catalog: &Arc<Catalog>,
    telemetry_cutoff: Option<(gretel::model::NodeId, u64)>,
) -> Vec<Diagnosis> {
    let (library, _) =
        FingerprintLibrary::characterize(catalog.clone(), &sc.specs, &sc.deployment, 2, 7);
    let exec = sc.run(catalog.clone());
    // Optionally silence one node's telemetry from a cutoff on: the node
    // keeps running (and failing) but its collectd stream goes dark.
    let telemetry = match telemetry_cutoff {
        Some((node, cutoff)) => {
            let resources: Vec<_> = exec
                .resources
                .iter()
                .filter(|s| s.node != node || s.ts < cutoff)
                .cloned()
                .collect();
            let watchers: Vec<_> = exec
                .watchers
                .iter()
                .filter(|w| w.node != node || w.ts < cutoff)
                .cloned()
                .collect();
            TelemetryStore::from_samples(&resources, &watchers)
        }
        None => TelemetryStore::from_execution(&exec),
    };
    let mut analyzer = Analyzer::new(&library, GretelConfig::default()).with_rca(RcaContext {
        deployment: &sc.deployment,
        telemetry: &telemetry,
        specs: &sc.specs,
    });
    let mut diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());
    attribute_cascades(
        &mut diagnoses,
        analyzer.traffic_graph(),
        catalog,
        CascadeParams::default(),
    );
    diagnoses
}

fn roots_of(diagnoses: &[Diagnosis]) -> Vec<Service> {
    let mut out: Vec<Service> = diagnoses
        .iter()
        .filter_map(|d| match &d.attribution {
            Some(Attribution::Root { service, .. }) => Some(*service),
            _ => None,
        })
        .collect();
    out.sort_by_key(|s| s.index());
    out.dedup();
    out
}

#[test]
fn cinder_crash_cascade_names_cinder_root_and_nova_symptom() {
    let catalog = Catalog::openstack();
    let sc = cinder_crash_cascade(&catalog, 42);
    let diagnoses = diagnose(&sc, &catalog, None);

    assert_eq!(roots_of(&diagnoses), vec![Service::Cinder], "the crashed service is the root");
    let symptom = diagnoses
        .iter()
        .find_map(|d| match &d.attribution {
            Some(Attribution::Symptom { service: Service::Nova, of, evidence }) => {
                Some((*of, evidence.clone()))
            }
            _ => None,
        })
        .expect("Nova's attach failures are marked as symptoms");
    assert_eq!(symptom.0, Service::Cinder);
    assert!(!symptom.1.is_empty(), "symptom carries an observed-traffic evidence chain");
    assert!(
        symptom.1.iter().any(|h| h.from == Service::Nova && h.to == Service::Cinder),
        "evidence walks the mined Nova->Cinder edge"
    );
    // No Nova diagnosis claims to be a root.
    assert!(diagnoses.iter().all(|d| {
        !matches!(&d.attribution, Some(Attribution::Root { service: Service::Nova, .. }))
    }));
}

#[test]
fn partition_cascade_attributes_root_with_all_nodes_healthy() {
    // A partial partition defeats flat RCA entirely (both processes up,
    // resources nominal, watchers green): the far side's diagnoses carry
    // no flat causes. The graph walk must still name it as root.
    let catalog = Catalog::openstack();
    let sc = partition_split_cascade(&catalog, 42);
    let diagnoses = diagnose(&sc, &catalog, None);

    assert_eq!(roots_of(&diagnoses), sc.truth.root_services());
    assert!(diagnoses.iter().any(|d| matches!(
        &d.attribution,
        Some(Attribution::Symptom { service: Service::Nova, of: Service::Cinder, .. })
    )));
}

#[test]
fn telemetry_silent_node_reports_stale_and_is_never_promoted_to_root() {
    // Satellite regression: the controller node (Nova's host) goes
    // telemetry-silent mid-run while the partition cascade unfolds. The
    // secondary (Nova) diagnoses must say "stale telemetry" rather than
    // "no cause", and *no* service may be promoted to cascade root on the
    // strength of missing data alone.
    let catalog = Catalog::openstack();
    let sc = partition_split_cascade(&catalog, 42);
    let controller = sc.deployment.node_of(Service::Nova, 0);
    let diagnoses = diagnose(&sc, &catalog, Some((controller, secs(15))));

    let nova_diags: Vec<&Diagnosis> = diagnoses
        .iter()
        .filter(|d| catalog.get(d.api).service == Service::Nova)
        .collect();
    assert!(!nova_diags.is_empty(), "secondary faults still diagnosed");
    assert!(
        nova_diags.iter().all(|d| !d.root_causes.is_empty()),
        "silent telemetry must not degrade to 'no cause identified'"
    );
    assert!(
        nova_diags.iter().any(|d| d
            .root_causes
            .iter()
            .any(|rc| matches!(rc.cause, CauseKind::StaleTelemetry { .. }))),
        "the silent node is reported as stale"
    );
    assert!(
        diagnoses.iter().all(|d| !matches!(&d.attribution, Some(Attribution::Root { .. }))),
        "stale-only evidence never anchors a cascade root"
    );
}

#[test]
fn non_cascade_scenarios_serialize_byte_identically_to_the_flat_path() {
    // The graph post-pass must be invisible on single-fault runs: same
    // diagnoses, same bytes.
    let catalog = Catalog::openstack();
    for sc in [failed_image_upload(&catalog, 1, 4), rabbitmq_outage(&catalog, 9, 4)] {
        let (library, _) =
            FingerprintLibrary::characterize(catalog.clone(), &sc.specs, &sc.deployment, 2, 7);
        let exec = sc.run(catalog.clone());
        let telemetry = TelemetryStore::from_execution(&exec);
        let mut analyzer =
            Analyzer::new(&library, GretelConfig::default()).with_rca(RcaContext {
                deployment: &sc.deployment,
                telemetry: &telemetry,
                specs: &sc.specs,
            });
        let mut diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());
        let flat = serde_json::to_string(&diagnoses).unwrap();
        attribute_cascades(
            &mut diagnoses,
            analyzer.traffic_graph(),
            &catalog,
            CascadeParams::default(),
        );
        let graphed = serde_json::to_string(&diagnoses).unwrap();
        assert_eq!(flat, graphed, "graph pass changed the report for {}", sc.name);
    }
}

#[test]
fn cascade_diagnosis_replay_is_deterministic() {
    let catalog = Catalog::openstack();
    let runs: Vec<String> = (0..2)
        .map(|_| {
            let sc = cinder_crash_cascade(&catalog, 7);
            serde_json::to_string(&diagnose(&sc, &catalog, None)).unwrap()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
}

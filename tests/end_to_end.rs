//! Cross-crate integration: the full offline → online pipeline.

use gretel::model::OpInstanceId;
use gretel::prelude::*;

fn small_suite(catalog: &std::sync::Arc<Catalog>, per_category: usize) -> TempestSuite {
    let counts: Vec<(Category, usize)> =
        Category::ALL.iter().map(|&c| (c, per_category)).collect();
    TempestSuite::generate_with_counts(catalog.clone(), 2, &counts)
}

#[test]
fn characterize_then_diagnose_injected_fault() {
    let catalog = Catalog::openstack();
    let deployment = Deployment::standard();
    let suite = small_suite(&catalog, 8);
    let (library, _) =
        FingerprintLibrary::characterize(catalog.clone(), suite.specs(), &deployment, 2, 11);
    assert_eq!(library.len(), suite.len());

    // Fault: a state-change REST step of the first Compute spec.
    let victim = suite
        .specs()
        .iter()
        .find(|s| s.category == Category::Compute)
        .expect("compute spec");
    let (api, occurrence) = victim
        .steps
        .iter()
        .enumerate()
        .find_map(|(i, st)| {
            let def = catalog.get(st.api);
            (!def.is_rpc() && def.is_state_change()).then(|| {
                let occ =
                    victim.steps[..i].iter().filter(|s| s.api == st.api).count() as u32;
                (st.api, occ)
            })
        })
        .expect("state-change REST step");

    let victim_index =
        suite.specs().iter().position(|s| s.id == victim.id).expect("victim in suite");
    let plan = FaultPlan::none().with_api_fault(ApiFault {
        api,
        scope: FaultScope::Instance(OpInstanceId(victim_index as u64)),
        occurrence,
        error: InjectedError::RestStatus { status: 500, reason: None },
        abort_op: true,
    });

    let refs: Vec<&OperationSpec> = suite.specs().iter().collect();
    let exec = Runner::new(catalog.clone(), &deployment, &plan, RunConfig::default()).run(&refs);

    // The faulty instance aborted; everything else completed.
    assert!(exec.outcomes[victim_index].aborted);
    assert_eq!(exec.outcomes.iter().filter(|o| o.aborted).count(), 1);

    let telemetry = TelemetryStore::from_execution(&exec);
    let cfg = GretelConfig::default();
    let mut analyzer = Analyzer::new(&library, cfg).with_rca(RcaContext {
        deployment: &deployment,
        telemetry: &telemetry,
        specs: suite.specs(),
    });
    let diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());

    let diag = diagnoses
        .iter()
        .find(|d| d.api == api && matches!(d.kind, FaultKind::Operational { status: Some(500), .. }))
        .expect("diagnosis for the injected fault");
    assert!(
        diag.matched.contains(&victim.id),
        "failed operation identified: matched {:?}, wanted {}",
        diag.matched,
        victim.id
    );
    // θ is workload-dependent: a fault on an API that opens many operations
    // truncates every candidate to a short shared prefix and legitimately
    // widens the match set. Instead of a hard-coded band, derive a sound
    // bound from this run's own workload: a candidate can only be reported
    // if its fingerprint contains the faulty API and the prefix before that
    // API's first occurrence embeds in the (noise-filtered) merged trace —
    // a superset of whatever window the analyzer actually matched against.
    // θ(n, N) is decreasing in n, so θ at that upper bound is a floor.
    let trace = gretel::core::trace_of(&exec);
    let filtered = gretel::core::noise_filter::filter_noise(&catalog, &trace);
    let candidate_bound = suite
        .specs()
        .iter()
        .filter(|s| {
            let seq = library.get(s.id).api_seq();
            seq.iter().position(|&a| a == api).is_some_and(|cut| {
                gretel::core::lcs::is_subsequence(&seq[..cut], &filtered)
            })
        })
        .count();
    assert!(candidate_bound >= 1, "the victim itself must be a candidate");
    let floor = gretel::core::theta(candidate_bound, library.len());
    assert!(
        diag.theta >= floor,
        "theta {} below workload floor {} ({} candidate(s) of {})",
        diag.theta,
        floor,
        candidate_bound,
        library.len()
    );
    assert!(diag.theta > 0.0, "fault must be narrowed at all: theta {}", diag.theta);
}

#[test]
fn clean_concurrent_run_produces_no_operational_diagnoses() {
    let catalog = Catalog::openstack();
    let deployment = Deployment::standard();
    let suite = small_suite(&catalog, 4);
    let (library, _) =
        FingerprintLibrary::characterize(catalog.clone(), suite.specs(), &deployment, 2, 3);
    let refs: Vec<&OperationSpec> = suite.specs().iter().collect();
    let exec = Runner::new(catalog.clone(), &deployment, &FaultPlan::none(), RunConfig::default())
        .run(&refs);
    let mut analyzer = Analyzer::new(&library, GretelConfig::default());
    let diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());
    assert!(
        diagnoses.iter().all(|d| !matches!(d.kind, FaultKind::Operational { .. })),
        "no operational faults in a clean run: {diagnoses:?}"
    );
}

#[test]
fn fingerprints_embed_in_their_own_execution_traces() {
    // Fundamental soundness: each learned fingerprint is a subsequence of
    // the noise-filtered trace of a fresh execution of its operation.
    let catalog = Catalog::openstack();
    let deployment = Deployment::standard();
    let suite = small_suite(&catalog, 3);
    let (library, _) =
        FingerprintLibrary::characterize(catalog.clone(), suite.specs(), &deployment, 2, 9);
    for spec in suite.specs().iter().take(10) {
        let exec = Runner::new(
            catalog.clone(),
            &deployment,
            &FaultPlan::none(),
            RunConfig { seed: 999, start_window: 0, ..RunConfig::default() },
        )
        .run(&[spec]);
        let trace = gretel::core::trace_of(&exec);
        let filtered = gretel::core::noise_filter::filter_noise(&catalog, &trace);
        let fp = library.get(spec.id);
        assert!(
            gretel::core::lcs::is_subsequence(&fp.api_seq(), &filtered),
            "{}: fingerprint must embed in a fresh run",
            spec.name
        );
    }
}

#[test]
fn threaded_service_agrees_with_inline_analysis_on_suite_traffic() {
    let catalog = Catalog::openstack();
    let deployment = Deployment::standard();
    let suite = small_suite(&catalog, 3);
    let (library, _) =
        FingerprintLibrary::characterize(catalog.clone(), suite.specs(), &deployment, 2, 13);

    // A couple of faults to make the comparison interesting.
    let api = suite.specs()[0]
        .steps
        .iter()
        .find(|s| {
            let d = catalog.get(s.api);
            !d.is_rpc() && d.is_state_change()
        })
        .map(|s| s.api)
        .expect("state-change step");
    let plan = FaultPlan::none().with_api_fault(ApiFault {
        api,
        scope: FaultScope::Instance(OpInstanceId(0)),
        occurrence: 0,
        error: InjectedError::RestStatus { status: 503, reason: None },
        abort_op: true,
    });
    let refs: Vec<&OperationSpec> = suite.specs().iter().collect();
    let exec = Runner::new(catalog.clone(), &deployment, &plan, RunConfig::default()).run(&refs);

    let cfg = GretelConfig::default();
    let mut inline = Analyzer::new(&library, cfg);
    let expected = analyze_stream(&mut inline, exec.messages.iter());

    let nodes: Vec<_> = deployment.nodes().iter().map(|n| n.id).collect();
    let mut threaded = Analyzer::new(&library, cfg);
    let (got, _, _) = gretel::core::run_service(&mut threaded, &nodes, &exec.messages, 256);
    assert_eq!(got, expected);
}

#[test]
fn modest_monitoring_clock_skew_does_not_break_detection() {
    use gretel::model::OpInstanceId;
    // The paper mandates NTP on all nodes; this quantifies why: detection
    // survives millisecond-scale monitoring-clock skew (which reorders
    // interleaved messages from different nodes) because fingerprint
    // matching only needs per-operation order, and an operation's
    // consecutive steps are separated by more than the skew.
    let catalog = Catalog::openstack();
    let deployment = Deployment::standard();
    let suite = small_suite(&catalog, 6);
    let (library, _) =
        FingerprintLibrary::characterize(catalog.clone(), suite.specs(), &deployment, 2, 21);

    let victim = suite.specs().iter().find(|s| s.category == Category::Compute).unwrap();
    let victim_index = suite.specs().iter().position(|s| s.id == victim.id).unwrap();
    let (api, occ) = victim
        .steps
        .iter()
        .enumerate()
        .find_map(|(i, st)| {
            let def = catalog.get(st.api);
            (!def.is_rpc() && def.is_state_change()).then(|| {
                (st.api, victim.steps[..i].iter().filter(|s| s.api == st.api).count() as u32)
            })
        })
        .unwrap();
    let plan = FaultPlan::none().with_api_fault(ApiFault {
        api,
        scope: FaultScope::Instance(OpInstanceId(victim_index as u64)),
        occurrence: occ,
        error: InjectedError::RestStatus { status: 500, reason: None },
        abort_op: true,
    });
    let refs: Vec<&OperationSpec> = suite.specs().iter().collect();
    let exec = Runner::new(catalog, &deployment, &plan, RunConfig::default()).run(&refs);

    // 2 ms of per-node monitoring clock skew.
    let skewed = gretel::netcap::skew_clocks(&exec.messages, 2_000, 5);
    let mut analyzer = Analyzer::new(&library, GretelConfig::default());
    let diagnoses = analyze_stream(&mut analyzer, skewed.iter());
    let d = diagnoses
        .iter()
        .find(|d| d.api == api && matches!(d.kind, FaultKind::Operational { .. }))
        .expect("fault still diagnosed under skew");
    assert!(d.matched.contains(&victim.id), "matched {:?}", d.matched);
}

//! Crash-recovery invariants (DESIGN.md §11).
//!
//! The fault-tolerant service must be *transparent*: whatever the
//! analysis plane suffers — killed workers, service crashes with
//! checkpoint/replay restarts, corrupted checkpoint records — the
//! committed diagnosis stream is byte-identical to the uninterrupted
//! run's, with zero diagnoses lost and zero duplicated. Budget
//! cancellation is the one visible degradation, and it must be honest:
//! a cancelled job's faults surface as `Cancelled`, never as `Exact` —
//! and, since budgets are deterministic, identically across replays.

use gretel::core::store::{FileStore, FileStoreConfig, MemStore, Store};
use gretel::core::{
    run_service_cfg, run_service_durable, run_service_recoverable, Analyzer, AnalyzerChaos,
    CaptureConfidence, DurableConfig, DurableOutcome, GretelConfig, JobBudget, LibraryReload,
    RecoveryConfig, RecoveryStats, ServiceConfig, ServiceError,
};
use gretel::model::{
    Catalog, HttpMethod, Message, NodeId, OpSpecId, OperationSpec, Service, Workflows,
};
use gretel::netcap::CaptureImpairment;
use gretel::sim::{
    ApiFault, CrashSchedule, Deployment, FaultPlan, FaultScope, InjectedError, RunConfig, Runner,
};
use gretel_core::FingerprintLibrary;
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::Duration;

struct Fixture {
    lib: FingerprintLibrary,
    nodes: Vec<NodeId>,
    messages: Vec<Message>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let cat = Catalog::openstack();
        let dep = Deployment::standard();
        let wf = Workflows::new(cat.clone());
        let specs = vec![wf.vm_create_spec(OpSpecId(0)), wf.image_upload_spec(OpSpecId(1))];
        let (lib, _) = FingerprintLibrary::characterize(cat.clone(), &specs, &dep, 2, 21);
        let ports_post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        let put_file = cat.rest_expect(Service::Glance, HttpMethod::Put, "/v2/images/{id}/file");
        let plan = FaultPlan::none()
            .with_api_fault(ApiFault {
                api: ports_post,
                scope: FaultScope::AllInstances,
                occurrence: 0,
                error: InjectedError::RestStatus { status: 500, reason: None },
                abort_op: true,
            })
            .with_api_fault(ApiFault {
                api: put_file,
                scope: FaultScope::AllInstances,
                occurrence: 0,
                error: InjectedError::RestStatus { status: 503, reason: None },
                abort_op: true,
            });
        // Several hundred messages: enough stream for multiple checkpoint
        // intervals and mid-stream crash points.
        let refs: Vec<&OperationSpec> = specs.iter().cycle().take(24).collect();
        let exec = Runner::new(cat, &dep, &plan, RunConfig { seed: 6, ..Default::default() })
            .run(&refs);
        let nodes = dep.nodes().iter().map(|n| n.id).collect();
        Fixture { lib, nodes, messages: exec.messages }
    })
}

fn gcfg() -> GretelConfig {
    GretelConfig { alpha: 48, ..GretelConfig::default() }
}

/// The plain (non-recoverable) pipeline's output for a given impairment —
/// the oracle every recovery run is compared against.
fn reference(impairment: Option<CaptureImpairment>) -> Vec<gretel::core::Diagnosis> {
    let fx = fixture();
    let cfg = ServiceConfig {
        impairment: Some(impairment.unwrap_or_else(CaptureImpairment::none)),
        ..ServiceConfig::default()
    };
    let mut analyzer = Analyzer::new(&fx.lib, gcfg());
    let (diags, _, _) = run_service_cfg(&mut analyzer, &fx.nodes, &fx.messages, &cfg);
    diags
}

#[test]
fn no_chaos_recoverable_equals_plain_pipeline() {
    let fx = fixture();
    let expected = reference(None);
    assert!(expected.len() >= 2, "fixture produces diagnoses");

    let mut analyzer = Analyzer::new(&fx.lib, gcfg());
    let cfg = RecoveryConfig { checkpoint_every: 64, ..RecoveryConfig::default() };
    let (diags, _, astats, rec) =
        run_service_recoverable(&mut analyzer, &fx.nodes, &fx.messages, &cfg)
            .expect("clean run completes");
    assert_eq!(diags, expected);
    assert!(rec.checkpoints_written > 0);
    assert_eq!(rec.worker_crashes, 0);
    assert_eq!(rec.restores, 0);
    assert_eq!(rec.duplicate_releases_suppressed, 0);
    assert!(astats.messages > 0);
}

#[test]
fn worker_kills_and_service_crashes_preserve_the_output_exactly() {
    let fx = fixture();
    let expected = reference(None);

    // Every job crashes its worker twice (attempts 0 and 1) and then
    // completes; on top of that the service itself crashes twice and
    // replays from its checkpoints.
    let cfg = RecoveryConfig {
        checkpoint_every: 64,
        chaos: AnalyzerChaos { kill_prob: 1.0, kill_attempts: 2, seed: 17, ..AnalyzerChaos::none() },
        max_attempts: 5,
        crash_points: CrashSchedule::at(vec![150, 80]).points,
        ..RecoveryConfig::default()
    };
    let mut analyzer = Analyzer::new(&fx.lib, gcfg());
    let (diags, svc, _, rec) =
        run_service_recoverable(&mut analyzer, &fx.nodes, &fx.messages, &cfg)
            .expect("chaotic run completes");

    assert_eq!(diags, expected, "zero diagnoses lost, zero duplicated");
    assert!(rec.worker_crashes > 0, "kill chaos fired: {rec:?}");
    assert_eq!(rec.jobs_requeued, rec.worker_crashes, "every crashed job was requeued");
    assert_eq!(rec.restores, 2, "one restore per scheduled crash");
    assert!(rec.replayed_frames > 0, "replay re-shipped the consumed prefix");
    assert_eq!(rec.jobs_cancelled, 0, "retry budget outlives the kill coin");
    // Replay inflates transport stats (documented) but never the analysis.
    assert!(svc.frames > 0);
}

#[test]
fn stalled_jobs_are_cancelled_never_exact() {
    let fx = fixture();
    let expected = reference(None);

    let cfg = RecoveryConfig {
        checkpoint_every: 64,
        budget: JobBudget::Passes(1 << 20),
        chaos: AnalyzerChaos { stall_prob: 1.0, seed: 23, ..AnalyzerChaos::none() },
        ..RecoveryConfig::default()
    };
    let mut analyzer = Analyzer::new(&fx.lib, gcfg());
    let (diags, _, _, rec) =
        run_service_recoverable(&mut analyzer, &fx.nodes, &fx.messages, &cfg)
            .expect("stalled run completes");

    assert!(rec.jobs_cancelled > 0, "stall chaos fired: {rec:?}");
    // Honesty: every fault still surfaces, each marked Cancelled — a
    // budget-cancelled job must never report Exact (or Degraded) since
    // no matching evidence backs it.
    assert_eq!(diags.len(), expected.len(), "no fault silently swallowed");
    for d in &diags {
        assert_eq!(d.confidence, CaptureConfidence::Cancelled, "{d:?}");
        assert!(d.matched.is_empty() && d.root_causes.is_empty());
    }
}

#[test]
fn budget_cancellations_replay_identically_across_crashes() {
    // Regression: the per-job bound used to be a wall-clock deadline read
    // from `Instant::now()`, so a replayed run could cancel a different
    // set of jobs than the original — breaking the byte-identical
    // recovery oracle. A pass budget is a pure function of the job, so a
    // run that cancels everything must commit the *same* stream whether
    // or not the service crashed and replayed in the middle.
    let fx = fixture();

    let run = |crash_points: Vec<u64>| {
        let cfg = RecoveryConfig {
            checkpoint_every: 64,
            budget: JobBudget::Passes(0),
            crash_points,
            ..RecoveryConfig::default()
        };
        let mut analyzer = Analyzer::new(&fx.lib, gcfg());
        run_service_recoverable(&mut analyzer, &fx.nodes, &fx.messages, &cfg)
            .expect("budget-starved run completes")
    };

    let (diags_plain, _, _, rec_plain) = run(Vec::new());
    let (diags_crashed, _, _, rec_crashed) = run(vec![150, 80]);

    assert!(rec_plain.jobs_cancelled > 0, "zero-pass budget cancels: {rec_plain:?}");
    assert!(rec_crashed.jobs_cancelled > 0);
    assert_eq!(rec_crashed.restores, 2, "one restore per scheduled crash");
    assert_eq!(
        diags_crashed, diags_plain,
        "cancellations must be a pure function of the jobs, not of crash timing"
    );
    assert!(diags_plain.iter().all(|d| d.confidence == CaptureConfidence::Cancelled));
}

#[test]
fn wall_clock_budgets_are_rejected_by_the_recoverable_service() {
    let fx = fixture();
    let cfg = RecoveryConfig {
        budget: JobBudget::WallClock(Duration::from_secs(5)),
        ..RecoveryConfig::default()
    };
    let mut analyzer = Analyzer::new(&fx.lib, gcfg());
    let err = run_service_recoverable(&mut analyzer, &fx.nodes, &fx.messages, &cfg)
        .expect_err("wall-clock budgets cannot be replayed identically");
    assert!(matches!(err, ServiceError::NondeterministicBudget), "{err}");
}

#[test]
fn corrupt_checkpoints_fall_back_and_suppress_duplicate_releases() {
    let fx = fixture();
    let expected = reference(None);

    // Every checkpoint record is corrupted, so the post-crash restore
    // finds no valid record and replays from scratch. Already-released
    // diagnoses are regenerated — the watermark must suppress them.
    let cfg = RecoveryConfig {
        checkpoint_every: 64,
        chaos: AnalyzerChaos { corrupt_prob: 1.0, seed: 31, ..AnalyzerChaos::none() },
        crash_points: vec![200],
        ..RecoveryConfig::default()
    };
    let mut analyzer = Analyzer::new(&fx.lib, gcfg());
    let (diags, _, _, rec) =
        run_service_recoverable(&mut analyzer, &fx.nodes, &fx.messages, &cfg)
            .expect("corrupted-journal run completes");

    assert_eq!(diags, expected, "cold replay still neither loses nor duplicates");
    assert!(rec.checkpoints_corrupt > 0, "corruption chaos fired: {rec:?}");
    assert_eq!(rec.checkpoints_corrupt, rec.checkpoints_written);
    assert_eq!(rec.restores, 1);
}

/// One complete durable run over `store`, panicking on a kill.
fn run_durable_to_completion(
    lib: &gretel_core::FingerprintLibrary,
    reloads: Vec<LibraryReload>,
    store: &mut dyn Store,
) -> (Vec<gretel::core::Diagnosis>, RecoveryStats) {
    let fx = fixture();
    let cfg = DurableConfig {
        recovery: RecoveryConfig { checkpoint_every: 64, ..RecoveryConfig::default() },
        kill_point: None,
        reloads,
    };
    match run_service_durable(lib, gcfg(), &fx.nodes, &fx.messages, &cfg, store)
        .expect("durable run completes")
    {
        DurableOutcome::Completed { diagnoses, recovery, .. } => (diagnoses, recovery),
        DurableOutcome::Killed { .. } => panic!("no kill point configured"),
    }
}

#[test]
fn durable_filestore_kill_restart_is_exactly_once() {
    // Whole-process SIGKILL model: each invocation is one process
    // lifetime over the same on-disk store. Two kills mid-stream, then a
    // clean third lifetime — the final diagnosis stream must be
    // byte-identical to the uninterrupted pipeline's.
    let fx = fixture();
    let expected = reference(None);
    let dir = std::env::temp_dir()
        .join(format!("gretel-test-durable-kill-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let kill_points = [150u64, 80];
    // Small segments so the restarts also read back through sealed files.
    let fcfg = FileStoreConfig { rotate_bytes: 4096, ..Default::default() };
    let mut invocations = 0usize;
    let last_recovery;
    let diags = loop {
        let mut store = FileStore::open(&dir, fcfg).expect("open durable store");
        let cfg = DurableConfig {
            recovery: RecoveryConfig { checkpoint_every: 64, ..RecoveryConfig::default() },
            kill_point: kill_points.get(invocations).copied(),
            reloads: Vec::new(),
        };
        let out = run_service_durable(&fx.lib, gcfg(), &fx.nodes, &fx.messages, &cfg, &mut store)
            .expect("durable run completes or is killed");
        invocations += 1;
        assert!(invocations <= kill_points.len() + 1, "kill schedule must converge");
        match out {
            DurableOutcome::Completed { diagnoses, recovery, .. } => {
                last_recovery = recovery;
                break diagnoses;
            }
            DurableOutcome::Killed { .. } => {} // next loop iteration restarts
        }
    };
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(invocations, 3, "both kills fired before completion");
    assert_eq!(diags, expected, "zero diagnoses lost, zero duplicated");
    assert!(
        last_recovery.replayed_frames > 0,
        "the restarted process replayed the consumed prefix: {last_recovery:?}"
    );
}

#[test]
fn empty_library_delta_reload_is_byte_identical() {
    // Hot-reload oracle: adopting a snapshot with no new operations must
    // leave the committed stream byte-identical to never reloading.
    let fx = fixture();
    let (no_reload, _) = run_durable_to_completion(&fx.lib, Vec::new(), &mut MemStore::new());
    assert_eq!(no_reload, reference(None), "durable == plain pipeline with no failures");

    let reloads = vec![LibraryReload { at_merged: 100, snapshot: fx.lib.to_snapshot() }];
    let (with_reload, rec) =
        run_durable_to_completion(&fx.lib, reloads, &mut MemStore::new());
    assert_eq!(rec.library_reloads, 1, "the reload fired: {rec:?}");
    assert!(rec.restores >= 1, "a reload re-enters from its boundary checkpoint");
    assert_eq!(with_reload, no_reload, "an empty delta must be invisible in the output");
}

#[test]
fn mid_run_library_addition_is_matched_at_next_freeze() {
    use gretel::model::OpSpecId;
    let fx = fixture();

    // A base library that has never seen image_upload (OpSpecId(1)).
    let cat = Catalog::openstack();
    let dep = Deployment::standard();
    let wf = Workflows::new(cat.clone());
    let base_specs = vec![wf.vm_create_spec(OpSpecId(0))];
    let (base_lib, _) =
        gretel_core::FingerprintLibrary::characterize(cat, &base_specs, &dep, 2, 21);

    let (full_diags, _) = run_durable_to_completion(&fx.lib, Vec::new(), &mut MemStore::new());
    let (control, _) = run_durable_to_completion(&base_lib, Vec::new(), &mut MemStore::new());
    let reloads = vec![LibraryReload { at_merged: 1, snapshot: fx.lib.to_snapshot() }];
    let (reloaded, rec) = run_durable_to_completion(&base_lib, reloads, &mut MemStore::new());

    assert_eq!(rec.library_reloads, 1, "the reload fired: {rec:?}");
    // Without the reload the matcher cannot name image_upload at all.
    assert!(control.iter().all(|d| !d.matched.contains(&OpSpecId(1))));
    // With it, the image-upload faults match the hot-loaded fingerprint
    // at their snapshot freeze — and the whole stream equals a run that
    // had the full library from the start: the in-flight window survived
    // the swap.
    assert!(
        reloaded.iter().any(|d| d.matched.contains(&OpSpecId(1))),
        "hot-loaded fingerprint must match: {reloaded:?}"
    );
    assert_eq!(reloaded, full_diags);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For ANY capture impairment composed with ANY schedule of service
    /// crashes and worker kills, checkpoint/replay is transparent: the
    /// committed diagnoses equal the uninterrupted impaired run's.
    #[test]
    fn recovery_is_transparent_under_capture_impairment(
        drop_prob in prop_oneof![Just(0.0), 0.0..0.2f64],
        dup_prob in 0.0..0.15f64,
        reorder_prob in 0.0..0.2f64,
        seed in any::<u64>(),
        crashes in 1usize..3,
        kill in any::<bool>(),
    ) {
        let fx = fixture();
        let imp = CaptureImpairment {
            drop_prob, dup_prob, reorder_prob, reorder_span: 3, stall: None, seed,
        };
        let expected = reference(Some(imp));

        let chaos = if kill {
            AnalyzerChaos { kill_prob: 0.5, kill_attempts: 2, seed, ..AnalyzerChaos::none() }
        } else {
            AnalyzerChaos::none()
        };
        let cfg = RecoveryConfig {
            service: ServiceConfig { impairment: Some(imp), ..ServiceConfig::default() },
            checkpoint_every: 48,
            chaos,
            max_attempts: 5,
            crash_points: CrashSchedule::seeded(seed, crashes, 300).points,
            ..RecoveryConfig::default()
        };
        let mut analyzer = Analyzer::new(&fx.lib, gcfg());
        let (diags, _, _, rec) =
            run_service_recoverable(&mut analyzer, &fx.nodes, &fx.messages, &cfg)
                .expect("impaired chaotic run completes");
        prop_assert_eq!(diags, expected);
        prop_assert_eq!(rec.jobs_cancelled, 0);
    }
}

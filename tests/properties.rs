//! Property-based tests (proptest) over the core data structures and
//! invariants (see DESIGN.md §6).

use gretel::core::lcs::{is_subsequence, lcs, lcs_len};
use gretel::core::noise_filter::filter_noise;
use gretel::core::window::SlidingWindow;
use gretel::core::{theta, Event, FaultMark};
use gretel::model::message::{render_rest_request_payload, render_rest_response_payload};
use gretel::model::{
    symbol, ApiId, Catalog, ConnKey, Direction, HttpMethod, Message, MessageId, NodeId,
    OpInstanceId, Service, WireKind,
};
use gretel::netcap::{decode_one, encode};
use gretel::telemetry::{LevelShiftConfig, LevelShiftDetector, OutlierDetector};
use proptest::prelude::*;

fn http_method() -> impl Strategy<Value = HttpMethod> {
    prop_oneof![
        Just(HttpMethod::Get),
        Just(HttpMethod::Post),
        Just(HttpMethod::Put),
        Just(HttpMethod::Delete),
        Just(HttpMethod::Patch),
        Just(HttpMethod::Head),
    ]
}

fn service() -> impl Strategy<Value = Service> {
    (0..Service::ALL.len()).prop_map(|i| Service::ALL[i])
}

prop_compose! {
    fn arb_message()(
        id in 0u64..u64::MAX / 2,
        ts in 0u64..u64::MAX / 2,
        src in 0u8..8,
        dst in 0u8..8,
        src_service in service(),
        dst_service in service(),
        api in 0u16..900,
        is_response in any::<bool>(),
        is_rpc in any::<bool>(),
        method in http_method(),
        uri in "[a-z0-9/._-]{0,40}",
        status in proptest::option::of(100u16..600),
        msg_id in any::<u64>(),
        error in proptest::option::of("[A-Za-z]{1,20}"),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        truth_op in proptest::option::of(any::<u64>()),
        corr in proptest::option::of(any::<u64>()),
        truth_noise in any::<bool>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
    ) -> Message {
        Message {
            id: MessageId(id),
            ts_us: ts,
            src_node: NodeId(src),
            dst_node: NodeId(dst),
            src_service,
            dst_service,
            api: ApiId(api),
            direction: if is_response { Direction::Response } else { Direction::Request },
            wire: if is_rpc {
                WireKind::Rpc { method: uri.clone(), msg_id, error }
            } else {
                WireKind::Rest { method, uri, status }
            },
            conn: ConnKey { src: NodeId(src), src_port: sport, dst: NodeId(dst), dst_port: dport },
            payload,
            correlation_id: corr,
            project: None,
            truth_op: truth_op.map(OpInstanceId),
            truth_noise,
        }
    }
}

proptest! {
    #[test]
    fn codec_round_trips_arbitrary_messages(msg in arb_message()) {
        let decoded = decode_one(&encode(&msg)).expect("round trip");
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn truncated_frames_never_panic(msg in arb_message(), cut in 0usize..64) {
        let bytes = encode(&msg);
        let keep = bytes.len().saturating_sub(cut);
        // Either decodes to the message (cut == 0) or reports an error /
        // incompleteness; never panics.
        let mut buf = bytes::BytesMut::from(&bytes[..keep]);
        let _ = gretel::netcap::decode(&mut buf);
    }

    #[test]
    fn lcs_is_subsequence_of_both(
        a in proptest::collection::vec(0u16..30, 0..60),
        b in proptest::collection::vec(0u16..30, 0..60),
    ) {
        let a: Vec<ApiId> = a.into_iter().map(ApiId).collect();
        let b: Vec<ApiId> = b.into_iter().map(ApiId).collect();
        let c = lcs(&a, &b);
        prop_assert!(is_subsequence(&c, &a));
        prop_assert!(is_subsequence(&c, &b));
        prop_assert_eq!(c.len(), lcs_len(&a, &b));
        prop_assert_eq!(lcs_len(&a, &b), lcs_len(&b, &a));
        prop_assert!(c.len() <= a.len().min(b.len()));
    }

    #[test]
    fn lcs_with_self_is_identity(a in proptest::collection::vec(0u16..50, 0..80)) {
        let a: Vec<ApiId> = a.into_iter().map(ApiId).collect();
        prop_assert_eq!(lcs(&a, &a), a.clone());
    }

    #[test]
    fn symbol_encoding_round_trips(id in 0u16..2000) {
        let api = ApiId(id);
        prop_assert_eq!(symbol::decode(symbol::encode(api)), Some(api));
    }

    #[test]
    fn theta_is_bounded(n in 0usize..2000, total in 1usize..2000) {
        let t = theta(n, total);
        prop_assert!((0.0..=1.0).contains(&t));
    }

    #[test]
    fn rest_scan_matches_rendered_statuses(status in 100u16..600, body in 0usize..256) {
        let p = render_rest_response_payload(status, "x", body);
        let got = gretel::core::scan_rest_error(&p);
        if status >= 400 {
            prop_assert_eq!(got, Some(status));
        } else {
            prop_assert_eq!(got, None);
        }
    }

    #[test]
    fn rest_scan_never_fires_on_requests(
        method in http_method(),
        uri in "[a-z0-9/._-]{0,60}",
        body in 0usize..256,
    ) {
        let p = render_rest_request_payload(method, &uri, body);
        prop_assert_eq!(gretel::core::scan_rest_error(&p), None);
    }
}

// Noise filter properties run against the real catalog (non-proptest
// setup is expensive, so sample within one test).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn noise_filter_is_idempotent_and_preserves_order(
        raw in proptest::collection::vec(0u16..770, 0..120),
    ) {
        let catalog = Catalog::openstack();
        let trace: Vec<ApiId> = raw
            .into_iter()
            .map(|v| ApiId(v % catalog.len() as u16))
            .collect();
        let once = filter_noise(&catalog, &trace);
        let twice = filter_noise(&catalog, &once);
        prop_assert_eq!(&once, &twice);
        prop_assert!(is_subsequence(&once, &trace));
        // No noise API survives.
        for api in &once {
            prop_assert!(!catalog.is_noise(*api));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn window_never_exceeds_alpha_and_snapshots_contain_fault(
        alpha in 2usize..64,
        n_before in 0usize..128,
        n_after_extra in 0usize..64,
    ) {
        let mk = |i: u64| Event {
            id: MessageId(i),
            ts: i,
            api: ApiId((i % 9) as u16),
            direction: Direction::Request,
            is_rpc: false,
            state_change: false,
            noise_api: false,
            src_node: NodeId(0),
            dst_node: NodeId(1),
            corr: None,
            fault: FaultMark::None,
            gap_before: 0,
        };
        let mut w = SlidingWindow::new(alpha);
        for i in 0..n_before as u64 {
            let snaps = w.push(mk(i));
            prop_assert!(snaps.is_empty());
            prop_assert!(w.len() <= alpha);
        }
        let fault = mk(n_before as u64);
        w.push(fault);
        w.arm(fault);
        let mut all = Vec::new();
        for i in 0..(alpha / 2 + n_after_extra) as u64 {
            all.extend(w.push(mk(n_before as u64 + 1 + i)));
            prop_assert!(w.len() <= alpha);
        }
        all.extend(w.flush());
        prop_assert_eq!(all.len(), 1);
        let snap = &all[0];
        prop_assert!(snap.events.len() <= alpha);
        // The fault is at the recorded index unless the window was too
        // small to retain it.
        if snap.events.iter().any(|e| e.id == fault.id) {
            prop_assert_eq!(snap.events[snap.fault_index].id, fault.id);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn level_shift_never_alarms_on_stationary_noise(
        level in 1.0f64..1000.0,
        jitter_frac in 0.001f64..0.02,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut det = LevelShiftDetector::new(LevelShiftConfig::default());
        for i in 0..400u64 {
            let v = level * (1.0 + rng.gen_range(-jitter_frac..jitter_frac));
            prop_assert!(det.update(i, v).is_none(), "false alarm at {i}");
        }
    }

    #[test]
    fn level_shift_always_catches_a_10x_shift(
        level in 1.0f64..100.0,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut det = LevelShiftDetector::new(LevelShiftConfig::default());
        let mut alarms = 0;
        for i in 0..200u64 {
            let base = if i < 100 { level } else { level * 10.0 };
            let v = base * (1.0 + rng.gen_range(-0.02..0.02));
            if det.update(i, v).is_some() {
                alarms += 1;
            }
        }
        prop_assert_eq!(alarms, 1, "exactly one alarm per sustained shift");
    }
}

//! Capture-loss robustness invariants (DESIGN.md §10).
//!
//! Two guarantees pin the degraded-mode machinery:
//!
//! * **Identity at zero impairment** — stamping sequence numbers, running
//!   the resequencer and enabling the miss-budget matcher with a no-op
//!   impairment must reproduce the legacy lossless pipeline's diagnoses
//!   exactly (the miss budget is funded only by observed gaps, and with
//!   none observed it is zero everywhere).
//! * **Honesty under impairment** — for any seeded impairment, every
//!   diagnosis is either `Exact` (its window spanned no gap) or `Degraded`
//!   with a consistent gap accounting (at least one gap, at least one lost
//!   frame per gap, and never more loss than the receiver inferred in
//!   total).

use gretel::core::{
    analyze_stream, run_service, run_service_cfg, Analyzer, CaptureConfidence, GretelConfig,
    ServiceConfig,
};
use gretel::model::{
    Catalog, HttpMethod, Message, NodeId, OpSpecId, OperationSpec, Service, Workflows,
};
use gretel::netcap::{CaptureImpairment, StallSpec};
use gretel::sim::{
    ApiFault, Deployment, FaultPlan, FaultScope, InjectedError, RunConfig, Runner,
};
use gretel_core::FingerprintLibrary;
use proptest::prelude::*;
use std::sync::OnceLock;

struct Fixture {
    lib: FingerprintLibrary,
    nodes: Vec<NodeId>,
    messages: Vec<Message>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let cat = Catalog::openstack();
        let dep = Deployment::standard();
        let wf = Workflows::new(cat.clone());
        let specs = vec![wf.vm_create_spec(OpSpecId(0)), wf.image_upload_spec(OpSpecId(1))];
        let (lib, _) = FingerprintLibrary::characterize(cat.clone(), &specs, &dep, 2, 21);
        let ports_post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        let plan = FaultPlan::none().with_api_fault(ApiFault {
            api: ports_post,
            scope: FaultScope::AllInstances,
            occurrence: 0,
            error: InjectedError::RestStatus { status: 500, reason: None },
            abort_op: true,
        });
        let refs: Vec<&OperationSpec> = specs.iter().collect();
        let exec = Runner::new(cat, &dep, &plan, RunConfig { seed: 2, ..Default::default() })
            .run(&refs);
        let nodes = dep.nodes().iter().map(|n| n.id).collect();
        Fixture { lib, nodes, messages: exec.messages }
    })
}

fn gcfg() -> GretelConfig {
    GretelConfig { alpha: 64, ..GretelConfig::default() }
}

#[test]
fn zero_impairment_is_identical_to_the_legacy_pipeline() {
    let fx = fixture();

    // Oracle: inline analysis (no threads, no channels, no frames).
    let mut inline = Analyzer::new(&fx.lib, gcfg());
    let expected = analyze_stream(&mut inline, fx.messages.iter());
    assert!(!expected.is_empty(), "fixture produces diagnoses");

    // Legacy threaded pipeline.
    let mut legacy = Analyzer::new(&fx.lib, gcfg());
    let (legacy_diags, _, _) = run_service(&mut legacy, &fx.nodes, &fx.messages, 64);
    assert_eq!(legacy_diags, expected);

    // Sequence-stamped pipeline with a no-op impairment: the whole
    // loss-tolerance machinery engaged, nothing lost, same answer.
    let cfg =
        ServiceConfig { impairment: Some(CaptureImpairment::none()), ..ServiceConfig::default() };
    let mut seq = Analyzer::new(&fx.lib, gcfg());
    let (seq_diags, svc, astats) = run_service_cfg(&mut seq, &fx.nodes, &fx.messages, &cfg);
    assert_eq!(seq_diags, expected);
    assert!(svc.capture.is_clean());
    assert_eq!(astats.capture_gaps, 0);
    assert!(seq_diags.iter().all(|d| d.confidence.is_exact()));
}

#[test]
fn agent_stall_is_reported_as_degraded_not_hidden() {
    let fx = fixture();
    let cfg = ServiceConfig {
        impairment: Some(CaptureImpairment {
            stall: Some(StallSpec { start_frame: 6, frames: 4 }),
            ..CaptureImpairment::none()
        }),
        ..ServiceConfig::default()
    };
    let mut analyzer = Analyzer::new(&fx.lib, gcfg());
    let (diags, svc, astats) = run_service_cfg(&mut analyzer, &fx.nodes, &fx.messages, &cfg);
    // Every agent with more than 6 frames stalls mid-stream; the receiver
    // must infer the holes rather than silently skip them.
    assert!(svc.capture.stalled > 0);
    assert!(astats.lost_frames > 0);
    assert!(
        diags.iter().any(|d| !d.confidence.is_exact()),
        "a 25-frame outage leaves degraded windows: {diags:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For ANY seeded impairment, diagnoses never misrepresent their
    /// evidence: `Exact` windows span no inferred loss, `Degraded` windows
    /// count at least one gap and at least one lost frame per gap, and no
    /// window claims more loss than the receiver inferred in total.
    #[test]
    fn every_diagnosis_is_exact_or_counts_its_gaps(
        drop_prob in prop_oneof![Just(0.0), 0.0..0.3f64],
        dup_prob in 0.0..0.2f64,
        reorder_prob in 0.0..0.3f64,
        reorder_span in 1usize..6,
        seed in any::<u64>(),
    ) {
        let fx = fixture();
        let imp = CaptureImpairment {
            drop_prob, dup_prob, reorder_prob, reorder_span, stall: None, seed,
        };
        let cfg = ServiceConfig { impairment: Some(imp), ..ServiceConfig::default() };
        let mut analyzer = Analyzer::new(&fx.lib, gcfg());
        let (diags, svc, astats) = run_service_cfg(&mut analyzer, &fx.nodes, &fx.messages, &cfg);

        // Receiver-side inference is bounded by what the injector did:
        // only drops create holes (duplication and bounded reorder are
        // absorbed by the resequencer).
        prop_assert!(svc.capture.lost <= svc.capture.dropped);
        prop_assert_eq!(astats.lost_frames, svc.capture.lost);

        for d in &diags {
            match d.confidence {
                CaptureConfidence::Exact => {}
                CaptureConfidence::Degraded { gaps, lost } => {
                    prop_assert!(gaps > 0, "degraded window with no gaps: {:?}", d);
                    prop_assert!(lost >= gaps, "gaps={} lost={}", gaps, lost);
                    prop_assert!(u64::from(lost) <= astats.lost_frames);
                }
                // This pipeline imposes no per-job deadline, so analysis
                // is never cancelled.
                CaptureConfidence::Cancelled => {
                    prop_assert!(false, "unexpected cancellation: {:?}", d);
                }
            }
        }
        if astats.lost_frames == 0 {
            prop_assert!(diags.iter().all(|d| d.confidence.is_exact()));
        }
    }
}

//! Batched zero-copy ingest oracle (DESIGN.md §12, ARCHITECTURE.md).
//!
//! The batched transport moves `FrameBatch`es — one arena, many frames —
//! across the capture→analyzer channels instead of one allocation per
//! message. Batching is a *transport* optimisation: diagnoses are a pure
//! function of the decoded messages in merge order, and per-agent frame
//! order is preserved inside every arena, so the committed diagnosis
//! stream must be byte-identical for ANY batch size, under ANY capture
//! impairment, and across crash/replay cycles. These tests pin that
//! oracle and the channel-operation economics the fast path exists for.

use gretel::core::{
    analyze_stream, run_service_cfg, run_service_recoverable, Analyzer, GretelConfig,
    RecoveryConfig, ServiceConfig,
};
use gretel::model::{
    Catalog, HttpMethod, Message, NodeId, OpSpecId, OperationSpec, Service, Workflows,
};
use gretel::netcap::{CaptureImpairment, StallSpec};
use gretel::sim::{
    ApiFault, CrashSchedule, Deployment, FaultPlan, FaultScope, InjectedError, RunConfig, Runner,
};
use gretel_core::{AnalyzerChaos, Diagnosis, FingerprintLibrary, ServiceStats};
use proptest::prelude::*;
use std::sync::OnceLock;

const BATCH_SIZES: [usize; 4] = [1, 8, 64, 256];

struct Fixture {
    lib: FingerprintLibrary,
    nodes: Vec<NodeId>,
    messages: Vec<Message>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let cat = Catalog::openstack();
        let dep = Deployment::standard();
        let wf = Workflows::new(cat.clone());
        let specs = vec![wf.vm_create_spec(OpSpecId(0)), wf.image_upload_spec(OpSpecId(1))];
        let (lib, _) = FingerprintLibrary::characterize(cat.clone(), &specs, &dep, 2, 21);
        let ports_post = cat.rest_expect(Service::Neutron, HttpMethod::Post, "/v2.0/ports.json");
        let put_file = cat.rest_expect(Service::Glance, HttpMethod::Put, "/v2/images/{id}/file");
        let plan = FaultPlan::none()
            .with_api_fault(ApiFault {
                api: ports_post,
                scope: FaultScope::AllInstances,
                occurrence: 0,
                error: InjectedError::RestStatus { status: 500, reason: None },
                abort_op: true,
            })
            .with_api_fault(ApiFault {
                api: put_file,
                scope: FaultScope::AllInstances,
                occurrence: 0,
                error: InjectedError::RestStatus { status: 503, reason: None },
                abort_op: true,
            });
        // Enough stream that every agent fills several maximum-size
        // batches and the recoverable runs cross checkpoint intervals.
        let refs: Vec<&OperationSpec> = specs.iter().cycle().take(24).collect();
        let exec = Runner::new(cat, &dep, &plan, RunConfig { seed: 9, ..Default::default() })
            .run(&refs);
        let nodes = dep.nodes().iter().map(|n| n.id).collect();
        Fixture { lib, nodes, messages: exec.messages }
    })
}

fn gcfg() -> GretelConfig {
    GretelConfig { alpha: 48, ..GretelConfig::default() }
}

fn run_batched(cfg: &ServiceConfig) -> (Vec<Diagnosis>, ServiceStats) {
    let fx = fixture();
    let mut analyzer = Analyzer::new(&fx.lib, gcfg());
    let (diags, svc, _) = run_service_cfg(&mut analyzer, &fx.nodes, &fx.messages, cfg);
    (diags, svc)
}

/// Clean capture: every batch size — on both the legacy unsequenced path
/// and the sequence-stamped path — reproduces the inline analyzer's
/// diagnoses byte-for-byte.
#[test]
fn every_batch_size_matches_the_inline_oracle() {
    let fx = fixture();
    let mut inline = Analyzer::new(&fx.lib, gcfg());
    let expected = analyze_stream(&mut inline, fx.messages.iter());
    assert!(expected.len() >= 2, "fixture produces diagnoses");

    for batch in BATCH_SIZES {
        let (diags, _) = run_batched(&ServiceConfig {
            ingest_batch: batch,
            ..ServiceConfig::default()
        });
        assert_eq!(diags, expected, "unsequenced path, ingest_batch={batch}");

        let (diags, svc) = run_batched(&ServiceConfig {
            ingest_batch: batch,
            impairment: Some(CaptureImpairment::none()),
            ..ServiceConfig::default()
        });
        assert_eq!(diags, expected, "sequenced path, ingest_batch={batch}");
        assert!(svc.capture.is_clean());
    }
}

/// The economics the fast path exists for: with `ingest_batch = n` an
/// agent performs at most `ceil(frames/n)` channel sends. Every batched
/// size must cut channel operations per frame at least 2× versus the
/// per-message (batch-1) run, ops/frame must never increase as batches
/// grow, and the diagnoses stay identical throughout. (Past ~64 the
/// curve flattens: short per-agent streams leave the last batch of each
/// agent partially filled, so the tail is flush-dominated.)
#[test]
fn batching_amortizes_channel_operations() {
    let per_frame = |svc: &ServiceStats| svc.channel_ops as f64 / svc.frames as f64;

    let mut prev: Option<(usize, Vec<Diagnosis>, ServiceStats)> = None;
    for batch in BATCH_SIZES {
        let (diags, svc) = run_batched(&ServiceConfig {
            ingest_batch: batch,
            ..ServiceConfig::default()
        });
        assert!(svc.channel_ops > 0 && svc.frames > 0);
        if batch == 1 {
            // One frame per send: ops == frames exactly.
            assert_eq!(svc.channel_ops, svc.frames);
        } else {
            assert!(
                2 * svc.channel_ops <= svc.frames,
                "ingest_batch={batch} must at least halve sends: \
                 {} ops for {} frames",
                svc.channel_ops,
                svc.frames,
            );
        }
        if let Some((pb, pdiags, psvc)) = &prev {
            assert_eq!(&diags, pdiags, "ingest_batch {pb} vs {batch} diverged");
            assert!(
                per_frame(psvc) >= per_frame(&svc),
                "ops/frame must not increase with batch size: \
                 {pb} gives {:.4}, {batch} gives {:.4}",
                per_frame(psvc),
                per_frame(&svc),
            );
        }
        prev = Some((batch, diags, svc));
    }
}

/// A stalled agent exercises the partial-batch flush: frames buffered in
/// the builder when the stream ends must still ship, so no diagnosis is
/// ever stranded in a half-full batch.
#[test]
fn partial_batches_flush_under_stall() {
    let imp = CaptureImpairment {
        stall: Some(StallSpec { start_frame: 6, frames: 4 }),
        ..CaptureImpairment::none()
    };
    let baseline = run_batched(&ServiceConfig {
        ingest_batch: 1,
        impairment: Some(imp),
        ..ServiceConfig::default()
    });
    for batch in [8, 64, 256] {
        let (diags, svc) = run_batched(&ServiceConfig {
            ingest_batch: batch,
            impairment: Some(imp),
            ..ServiceConfig::default()
        });
        assert_eq!(diags, baseline.0, "stalled capture, ingest_batch={batch}");
        assert_eq!(svc.frames, baseline.1.frames, "no frame stranded in a builder");
    }
}

/// Crash/replay composes with batching: the recoverable service at any
/// batch size commits the same stream as the uninterrupted batch-1 run,
/// even with worker-kill chaos layered on top.
#[test]
fn crash_replay_is_batch_size_invariant() {
    let fx = fixture();
    let (expected, _) = run_batched(&ServiceConfig {
        ingest_batch: 1,
        impairment: Some(CaptureImpairment::none()),
        ..ServiceConfig::default()
    });

    for batch in [1, 64] {
        let cfg = RecoveryConfig {
            service: ServiceConfig {
                ingest_batch: batch,
                impairment: Some(CaptureImpairment::none()),
                ..ServiceConfig::default()
            },
            checkpoint_every: 64,
            chaos: AnalyzerChaos {
                kill_prob: 0.5,
                kill_attempts: 2,
                seed: 17,
                ..AnalyzerChaos::none()
            },
            max_attempts: 5,
            crash_points: CrashSchedule::at(vec![150, 80]).points,
            ..RecoveryConfig::default()
        };
        let mut analyzer = Analyzer::new(&fx.lib, gcfg());
        let (diags, _, _, rec) =
            run_service_recoverable(&mut analyzer, &fx.nodes, &fx.messages, &cfg)
                .expect("chaotic batched run completes");
        assert_eq!(diags, expected, "recovery at ingest_batch={batch}");
        assert_eq!(rec.restores, 2, "one restore per scheduled crash");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For ANY seeded impairment and ANY batch size, the diagnosis stream
    /// equals the per-message (batch-1) run under the same impairment:
    /// impairment is applied to the flat frame stream BEFORE batching, so
    /// the transport granularity can never change what was lost.
    #[test]
    fn impairment_composes_with_any_batch_size(
        drop_prob in prop_oneof![Just(0.0), 0.0..0.25f64],
        dup_prob in 0.0..0.2f64,
        reorder_prob in 0.0..0.25f64,
        reorder_span in 1usize..6,
        seed in any::<u64>(),
        batch in prop_oneof![Just(3usize), Just(8), Just(64), Just(256)],
    ) {
        let imp = CaptureImpairment {
            drop_prob, dup_prob, reorder_prob, reorder_span, stall: None, seed,
        };
        let (expected, ref_svc) = run_batched(&ServiceConfig {
            ingest_batch: 1,
            impairment: Some(imp),
            ..ServiceConfig::default()
        });
        let (diags, svc) = run_batched(&ServiceConfig {
            ingest_batch: batch,
            impairment: Some(imp),
            ..ServiceConfig::default()
        });
        prop_assert_eq!(diags, expected);
        // Same impairment stream either way: transport granularity must
        // not change what the receiver saw or inferred.
        prop_assert_eq!(svc.frames, ref_svc.frames);
        prop_assert_eq!(svc.capture.dropped, ref_svc.capture.dropped);
        prop_assert_eq!(svc.capture.lost, ref_svc.capture.lost);
    }
}

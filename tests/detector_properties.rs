//! Property tests on the operation detector (Algorithm 2).

use gretel::core::{Detector, Event, FaultMark, FingerprintLibrary, GretelConfig};
use gretel::model::{ApiId, Catalog, Category, Direction, MessageId, NodeId, TempestSuite};
use gretel::sim::Deployment;
use proptest::prelude::*;
use std::sync::Arc;

fn workbench() -> (Arc<Catalog>, FingerprintLibrary, Vec<ApiId>) {
    let catalog = Catalog::openstack();
    let counts: Vec<(Category, usize)> =
        Category::ALL.iter().map(|&c| (c, 10)).collect();
    let suite = TempestSuite::generate_with_counts(catalog.clone(), 3, &counts);
    let deployment = Deployment::standard();
    let (library, _) =
        FingerprintLibrary::characterize(catalog.clone(), suite.specs(), &deployment, 2, 5);
    let pool = suite.pools(Category::Compute).rest.clone();
    (catalog, library, pool)
}

fn build_events(catalog: &Catalog, apis: &[ApiId], fault_pos: usize, offending: ApiId) -> Vec<Event> {
    let mut events: Vec<Event> = apis
        .iter()
        .enumerate()
        .map(|(i, &api)| {
            let def = catalog.get(api);
            Event {
                id: MessageId(i as u64),
                ts: i as u64 * 10,
                api,
                direction: Direction::Request,
                is_rpc: def.is_rpc(),
                state_change: def.is_state_change(),
                noise_api: def.noise.is_some(),
                src_node: NodeId(0),
                dst_node: NodeId(1),
                corr: None,
                fault: FaultMark::None,
                gap_before: 0,
            }
        })
        .collect();
    let def = catalog.get(offending);
    events[fault_pos] = Event {
        api: offending,
        is_rpc: def.is_rpc(),
        state_change: def.is_state_change(),
        noise_api: false,
        fault: FaultMark::RestError(500),
        gap_before: 0,
        ..events[fault_pos]
    };
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matched_operations_always_contain_the_offending_api(
        picks in proptest::collection::vec(0usize..195, 32..256),
        fault_pick in 0usize..195,
        fault_pos_frac in 0.1f64..0.9,
    ) {
        let (catalog, library, pool) = workbench();
        let apis: Vec<ApiId> = picks.into_iter().map(|i| pool[i % pool.len()]).collect();
        let offending = pool[fault_pick % pool.len()];
        let fault_pos = ((apis.len() - 1) as f64 * fault_pos_frac) as usize;
        let events = build_events(&catalog, &apis, fault_pos, offending);

        let cfg = GretelConfig { alpha: events.len().max(2), ..GretelConfig::default() };
        let detector = Detector::new(&library, cfg);
        let out = detector.detect_operational(&events, fault_pos, offending);

        // Every matched operation must be a candidate (contain the API).
        for op in &out.matched {
            prop_assert!(
                library.get(*op).contains(offending),
                "{op} matched without containing the offending API"
            );
        }
        // Matched is deduplicated and bounded by the candidate count.
        let mut dedup = out.matched.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), out.matched.len());
        prop_assert!(out.matched.len() <= out.candidates);
        // θ is consistent with the matched count.
        prop_assert!(
            (out.theta - gretel::core::theta(out.matched.len(), library.len())).abs() < 1e-12
        );
    }

    #[test]
    fn detection_is_deterministic(
        picks in proptest::collection::vec(0usize..195, 32..128),
        fault_pick in 0usize..195,
    ) {
        let (catalog, library, pool) = workbench();
        let apis: Vec<ApiId> = picks.into_iter().map(|i| pool[i % pool.len()]).collect();
        let offending = pool[fault_pick % pool.len()];
        let fault_pos = apis.len() / 2;
        let events = build_events(&catalog, &apis, fault_pos, offending);
        let cfg = GretelConfig { alpha: events.len().max(2), ..GretelConfig::default() };
        let detector = Detector::new(&library, cfg);
        let a = detector.detect_operational(&events, fault_pos, offending);
        let b = detector.detect_operational(&events, fault_pos, offending);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn future_events_do_not_change_operational_detection(
        picks in proptest::collection::vec(0usize..195, 32..128),
        future in proptest::collection::vec(0usize..195, 0..64),
        fault_pick in 0usize..195,
    ) {
        // Operational faults abort their operation, so the default policy
        // anchors at the fault: appending arbitrary future traffic must
        // not change the matched set.
        let (catalog, library, pool) = workbench();
        let apis: Vec<ApiId> = picks.into_iter().map(|i| pool[i % pool.len()]).collect();
        let offending = pool[fault_pick % pool.len()];
        let fault_pos = apis.len() - 1;
        let base = build_events(&catalog, &apis, fault_pos, offending);

        let mut extended_apis = apis.clone();
        extended_apis.extend(future.into_iter().map(|i| pool[i % pool.len()]));
        let extended = build_events(&catalog, &extended_apis, fault_pos, offending);

        let cfg = GretelConfig { alpha: extended.len().max(2), ..GretelConfig::default() };
        let detector = Detector::new(&library, cfg);
        let a = detector.detect_operational(&base, fault_pos, offending);
        let b = detector.detect_operational(&extended, fault_pos, offending);
        prop_assert_eq!(a.matched, b.matched);
    }
}

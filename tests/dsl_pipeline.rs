//! Integration: DSL-defined operations flow through the whole stack —
//! parse → validate → incremental characterization → execution → fault
//! detection — and are disambiguated from built-in operations that share
//! APIs.

use gretel::model::{parse_dsl, OpInstanceId};
use gretel::prelude::*;

const DOC: &str = r#"
operation compute.boot_tag_snapshot compute
  horizon -> nova: POST /v2.1/servers [medium, 1024b]
  nova -> nova-compute: rpc build_and_run_instance [boot]
  nova -> neutron: GET /v2.0/networks.json
  nova -> neutron: POST /v2.0/ports.json [medium]
  horizon -> nova: POST /v2.1/servers/{id}/metadata
  horizon -> nova: POST /v2.1/servers/{id}/action [medium]
  nova -> nova-compute: rpc snapshot_instance [boot]
  nova-compute -> glance: POST /v2/images [medium]
  nova-compute -> glance: PUT /v2/images/{id}/file [slow, 1048576b]
"#;

#[test]
fn dsl_operation_is_learned_and_diagnosed() {
    let catalog = Catalog::openstack();
    let deployment = Deployment::standard();
    let wf = Workflows::new(catalog.clone());

    let mut specs = vec![wf.vm_create_spec(OpSpecId(0)), wf.image_upload_spec(OpSpecId(1))];
    let (mut library, _) =
        FingerprintLibrary::characterize(catalog.clone(), &specs, &deployment, 2, 7);

    let custom = parse_dsl(&catalog, DOC, OpSpecId(2)).expect("DSL parses");
    assert_eq!(custom.len(), 1);
    assert!(custom[0].validate(&catalog).is_empty());
    library.extend_characterize(&custom, &deployment, 2, 11);
    specs.extend(custom);
    assert_eq!(library.len(), 3);

    // Fault the custom op on an API that the image-upload op ALSO uses:
    // disambiguation must come from the preceding context.
    let put_file = catalog.rest_expect(Service::Glance, HttpMethod::Put, "/v2/images/{id}/file");
    assert!(library.candidates(put_file).contains(&OpSpecId(1)));
    assert!(library.candidates(put_file).contains(&OpSpecId(2)));

    let plan = FaultPlan::none().with_api_fault(ApiFault {
        api: put_file,
        scope: FaultScope::Instance(OpInstanceId(2)),
        occurrence: 0,
        error: InjectedError::RestStatus { status: 413, reason: None },
        abort_op: true,
    });
    let refs: Vec<&OperationSpec> = specs.iter().collect();
    let exec = Runner::new(catalog, &deployment, &plan, RunConfig::default()).run(&refs);

    let mut analyzer = Analyzer::new(&library, GretelConfig::default());
    let diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());
    let d = diagnoses
        .iter()
        .find(|d| matches!(d.kind, FaultKind::Operational { status: Some(413), .. }))
        .expect("413 diagnosed");
    assert!(d.matched.contains(&OpSpecId(2)), "matched {:?}", d.matched);
    assert!(
        !d.matched.contains(&OpSpecId(1)),
        "the image upload shares the API but not the context"
    );
}

#[test]
fn dsl_rejects_operations_with_unknown_apis() {
    let catalog = Catalog::openstack();
    let bad = "operation x compute\n  horizon -> nova: POST /v9/does-not-exist\n";
    let e = parse_dsl(&catalog, bad, OpSpecId(0)).unwrap_err();
    assert_eq!(e.line, 2);
}

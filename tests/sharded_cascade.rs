//! Integration: cascade attribution must survive tenant sharding.
//!
//! The cross-shard RCA merge re-runs `attribute_cascades` over the merged
//! diagnosis union and merged traffic graph. This property test drives
//! the partition-split cascade (the scenario flat RCA cannot solve — both
//! processes up, watchers green, only the traffic graph names the root)
//! as multi-tenant traffic through 1/2/4/8 pipeline shards across random
//! seeds, and demands that every diagnosis carries the *same*
//! root/symptom label the unsharded pipeline assigns — a root detected
//! from shard 0's tenants must still claim the symptoms diagnosed on
//! shard 3.
//!
//! Both paths run RCA-free (no telemetry context): the point is the graph
//! post-pass, not per-node cause ranking.

use gretel::core::graph::{Attribution, CascadeParams};
use gretel::core::{canonical_order, run_sharded, ShardedConfig};
use gretel::model::{NodeId, Service};
use gretel::prelude::*;
use gretel::sim::cascade::partition_split_cascade;
use proptest::prelude::*;

/// A diagnosis's cascade label, reduced to what the report shows the
/// operator: nothing, "root of the cascade", or "symptom of <service>".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Label {
    Plain,
    Root(Service),
    Symptom { service: Service, of: Service },
}

fn label_of(d: &Diagnosis) -> Label {
    match &d.attribution {
        None => Label::Plain,
        Some(Attribution::Root { service, .. }) => Label::Root(*service),
        Some(Attribution::Symptom { service, of, .. }) => {
            Label::Symptom { service: *service, of: *of }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn cascade_labels_are_identical_across_shard_counts(seed in 0u64..1000) {
        let catalog = Catalog::openstack();
        let mut sc = partition_split_cascade(&catalog, seed);
        // Multi-tenant deployment mode: several Keystone projects so the
        // cascade's operations actually spread across shards, and
        // correlation ids on (the regime under which sharding preserves
        // the diagnosis stream).
        sc.config.projects = 5;
        sc.config.correlation_ids = true;
        let exec = sc.run(catalog.clone());
        let (library, _) = FingerprintLibrary::characterize(
            catalog.clone(),
            &sc.specs,
            &sc.deployment,
            2,
            7,
        );
        // α sized to the run (the GretelConfig::auto rule): window
        // eviction pressure differs between full load and a shard's 1/N
        // load, so an undersized window would skew context accounting.
        let alpha = (2 * exec.messages.len()).max(64);
        let gcfg = GretelConfig { alpha, ..GretelConfig::default() };
        let nodes: Vec<NodeId> = sc.deployment.nodes().iter().map(|n| n.id).collect();

        // Unsharded baseline: inline analyzer, then the graph post-pass
        // over its own mined graph — diagnoses in canonical order first,
        // exactly as the sharded merge orders them.
        let mut analyzer = Analyzer::new(&library, gcfg);
        let mut expected = analyze_stream(&mut analyzer, exec.messages.iter());
        canonical_order(&mut expected);
        gretel::core::graph::attribute_cascades(
            &mut expected,
            analyzer.traffic_graph(),
            &catalog,
            CascadeParams::default(),
        );
        prop_assert!(!expected.is_empty(), "the cascade produces diagnoses");
        prop_assert!(
            expected.iter().any(|d| matches!(label_of(d), Label::Root(_))),
            "the unsharded pass names a cascade root"
        );
        let expected_labels: Vec<Label> = expected.iter().map(label_of).collect();

        for shards in [1usize, 2, 4, 8] {
            let cfg = ShardedConfig {
                shards,
                cascades: Some(CascadeParams::default()),
                ..ShardedConfig::default()
            };
            let out = run_sharded(&library, gcfg, &nodes, &exec.messages, &cfg)
                .expect("sharded run completes");
            prop_assert_eq!(
                out.diagnoses.len(),
                expected.len(),
                "{} shard(s): same diagnosis set",
                shards
            );
            let labels: Vec<Label> = out.diagnoses.iter().map(label_of).collect();
            prop_assert_eq!(
                &labels,
                &expected_labels,
                "{} shard(s): every root/symptom label must match the unsharded pass",
                shards
            );
        }
    }
}

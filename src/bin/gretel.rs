//! `gretel` — command-line front end.
//!
//! ```text
//! gretel suite [--seed N]                 print suite characterization
//! gretel fingerprints [--seed N] [--op I] show learned fingerprints
//! gretel scenario <name> [--seed N]       run a canned fault scenario
//! gretel capture <out.pcap> [--seed N]    simulate traffic into a pcap
//! gretel analyze <in.pcap> [--seed N]     analyze a pcap capture
//! gretel define <ops.gretel> [--seed N]   characterize DSL-defined operations
//! gretel timeline <scenario> [--seed N]   print a scenario's message ladder
//! ```
//!
//! Scenario names: `image-upload`, `neutron-latency`, `linuxbridge`,
//! `ntp`, `no-compute`, `mysql`, `rabbitmq`.

use gretel::model::OpSpecId;
use gretel::netcap::pcap;
use gretel::prelude::*;
use gretel::sim::scenario::{self, Scenario};
use gretel::telemetry::LevelShiftConfig;
use std::process::ExitCode;
use std::sync::Arc;

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn positional(idx: usize) -> Option<String> {
    std::env::args().skip(1).filter(|a| !a.starts_with("--")).nth(idx)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: gretel <suite|fingerprints|scenario|capture|analyze|define|timeline> [args]\n\
         see `src/bin/gretel.rs` for details"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let Some(cmd) = positional(0) else {
        return usage();
    };
    let seed: u64 = arg("--seed", 42);
    match cmd.as_str() {
        "suite" => cmd_suite(seed),
        "fingerprints" => cmd_fingerprints(seed),
        "scenario" => match positional(1) {
            Some(name) => cmd_scenario(&name, seed),
            None => usage(),
        },
        "capture" => match positional(1) {
            Some(path) => cmd_capture(&path, seed),
            None => usage(),
        },
        "analyze" => match positional(1) {
            Some(path) => cmd_analyze(&path, seed),
            None => usage(),
        },
        "define" => match positional(1) {
            Some(path) => cmd_define(&path, seed),
            None => usage(),
        },
        "timeline" => match positional(1) {
            Some(name) => cmd_timeline(&name, seed),
            None => usage(),
        },
        _ => usage(),
    }
}

fn cmd_timeline(name: &str, seed: u64) -> ExitCode {
    let catalog = Catalog::openstack();
    let Some(sc) = build_scenario(name, seed, &catalog) else {
        eprintln!("unknown scenario '{name}'");
        return ExitCode::FAILURE;
    };
    let exec = sc.run(catalog.clone());
    println!("== {} ==\n", sc.name);
    println!("{}", gretel::sim::summary(&exec));
    println!("faulty instance ladder:");
    print!("{}", gretel::sim::instance_timeline(&exec, &catalog, gretel::model::OpInstanceId(0)));
    ExitCode::SUCCESS
}

fn cmd_define(path: &str, seed: u64) -> ExitCode {
    let catalog = Catalog::openstack();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let specs = match gretel::model::parse_dsl(&catalog, &text, OpSpecId(0)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}:{e}");
            return ExitCode::FAILURE;
        }
    };
    println!("parsed {} operation(s); characterizing...", specs.len());
    let deployment = Deployment::standard();
    let (library, _) = FingerprintLibrary::characterize(catalog, &specs, &deployment, 3, seed);
    for fp in library.iter() {
        println!(
            "{}: {} atoms, regex {}",
            specs[fp.op.index()].name,
            fp.len(),
            fp.regex_string()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_suite(seed: u64) -> ExitCode {
    let catalog = Catalog::openstack();
    let suite = TempestSuite::generate(catalog.clone(), seed);
    println!(
        "catalog: {} public REST APIs, {} RPCs; suite: {} tests",
        catalog.public_rest_count(),
        catalog.rpc_count(),
        suite.len()
    );
    for cat in Category::ALL {
        let n = suite.by_category(cat).count();
        let avg: f64 = suite.by_category(cat).map(|s| s.len() as f64).sum::<f64>() / n as f64;
        println!("  {:<8} {:>4} tests, avg {:>5.1} steps", cat.name(), n, avg);
    }
    ExitCode::SUCCESS
}

fn cmd_fingerprints(seed: u64) -> ExitCode {
    let catalog = Catalog::openstack();
    let deployment = Deployment::standard();
    let wf = Workflows::new(catalog.clone());
    let specs = vec![
        wf.vm_create_spec(OpSpecId(0)),
        wf.image_upload_spec(OpSpecId(1)),
        wf.cinder_list_spec(OpSpecId(2)),
    ];
    let (library, _) = FingerprintLibrary::characterize(catalog, &specs, &deployment, 3, seed);
    let op: i64 = arg("--op", -1);
    for fp in library.iter() {
        if op >= 0 && fp.op.index() != op as usize {
            continue;
        }
        println!("{} ({} atoms):", specs[fp.op.index()].name, fp.len());
        println!("  regex: {}", fp.regex_string());
        for atom in &fp.atoms {
            println!(
                "    {}{}",
                library.catalog().get(atom.api).label(),
                if atom.starred { "  [*]" } else { "" }
            );
        }
    }
    ExitCode::SUCCESS
}

fn build_scenario(name: &str, seed: u64, catalog: &Arc<Catalog>) -> Option<Scenario> {
    Some(match name {
        "image-upload" => scenario::failed_image_upload(catalog, seed, 6),
        "neutron-latency" => scenario::neutron_api_latency(catalog, seed, 60),
        "linuxbridge" => scenario::linuxbridge_crash(catalog, seed, 6),
        "ntp" => scenario::ntp_failure(catalog, seed, 6),
        "no-compute" => scenario::no_compute_available(catalog, seed, 6),
        "mysql" => scenario::mysql_outage(catalog, seed, 6),
        "rabbitmq" => scenario::rabbitmq_outage(catalog, seed, 6),
        _ => return None,
    })
}

fn cmd_scenario(name: &str, seed: u64) -> ExitCode {
    let catalog = Catalog::openstack();
    let Some(sc) = build_scenario(name, seed, &catalog) else {
        eprintln!("unknown scenario '{name}'");
        return ExitCode::FAILURE;
    };
    println!("== {} ==\n{}\n", sc.name, sc.description);
    let (library, _) =
        FingerprintLibrary::characterize(catalog.clone(), &sc.specs, &sc.deployment, 2, seed);
    let exec = sc.run(catalog);
    let telemetry = TelemetryStore::from_execution(&exec);
    let ls = LevelShiftConfig { baseline_window: 20, test_window: 4, ..Default::default() };
    let mut analyzer =
        gretel::core::Analyzer::with_perf_config(&library, GretelConfig::default(), ls, false)
            .with_rca(RcaContext {
                deployment: &sc.deployment,
                telemetry: &telemetry,
                specs: &sc.specs,
            });
    let diagnoses = analyze_stream(&mut analyzer, exec.messages.iter());
    println!(
        "{} messages analyzed, {} diagnosis/es:\n",
        analyzer.stats().messages,
        diagnoses.len()
    );
    for d in diagnoses.iter().take(5) {
        print!("{}", d.render(&sc.specs));
    }
    ExitCode::SUCCESS
}

fn cmd_capture(path: &str, seed: u64) -> ExitCode {
    let catalog = Catalog::openstack();
    let deployment = Deployment::standard();
    let wf = Workflows::new(catalog.clone());
    let specs = [wf.vm_create_spec(OpSpecId(0)),
        wf.image_upload_spec(OpSpecId(1)),
        wf.cinder_list_spec(OpSpecId(2))];
    let refs: Vec<&OperationSpec> = specs.iter().collect();
    let exec = Runner::new(
        catalog,
        &deployment,
        &FaultPlan::none(),
        RunConfig { seed, ..RunConfig::default() },
    )
    .run(&refs);
    let mut file = match std::fs::File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = pcap::write_capture(&mut file, &exec.messages) {
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {} messages to {path}", exec.messages.len());
    ExitCode::SUCCESS
}

fn cmd_analyze(path: &str, seed: u64) -> ExitCode {
    let catalog = Catalog::openstack();
    let deployment = Deployment::standard();
    let wf = Workflows::new(catalog.clone());
    let specs = vec![
        wf.vm_create_spec(OpSpecId(0)),
        wf.image_upload_spec(OpSpecId(1)),
        wf.cinder_list_spec(OpSpecId(2)),
    ];
    let (library, _) =
        FingerprintLibrary::characterize(catalog, &specs, &deployment, 3, seed);
    let mut file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let messages = match pcap::read_capture(&mut file) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot read capture: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut analyzer = Analyzer::new(&library, GretelConfig::default());
    let diagnoses = analyze_stream(&mut analyzer, messages.iter());
    println!("{} messages, {} diagnosis/es", messages.len(), diagnoses.len());
    for d in &diagnoses {
        print!("{}", d.render(&specs));
    }
    ExitCode::SUCCESS
}

//! # gretel — lightweight fault localization for OpenStack
//!
//! A from-scratch Rust reproduction of **GRETEL** (Goel, Kalra, Dhawan —
//! *GRETEL: Lightweight Fault Localization for OpenStack*, CoNEXT '16),
//! including every substrate its evaluation needs: an OpenStack deployment
//! simulator, a Tempest-like integration suite, capture transport,
//! collectd-style telemetry, and the HANSEL baseline.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`model`] — the OpenStack domain model (643-API catalog, messages,
//!   operations, the synthetic Tempest suite);
//! * [`sim`] — the deterministic deployment simulator with fault
//!   injection;
//! * [`netcap`] — capture agents, wire codec, pcap dumps;
//! * [`telemetry`] — resource/watcher series and level-shift detection;
//! * [`store`] — the durable append-only state store (checksummed
//!   records, segment rotation, torn-tail recovery) behind the
//!   fault-tolerant service;
//! * [`core`] — GRETEL itself: fingerprints, the sliding-window anomaly
//!   detector, operation detection and root cause analysis;
//! * [`hansel`] — the HANSEL (CoNEXT '15) baseline.
//!
//! ## Quickstart
//!
//! ```no_run
//! use gretel::prelude::*;
//!
//! // 1. Offline: learn fingerprints from the integration suite.
//! let catalog = Catalog::openstack();
//! let suite = TempestSuite::generate(catalog.clone(), 42);
//! let deployment = Deployment::standard();
//! let (library, _) =
//!     FingerprintLibrary::characterize(catalog.clone(), suite.specs(), &deployment, 2, 7);
//!
//! // 2. Online: analyze captured traffic.
//! let cfg = GretelConfig::auto(library.fp_max(), 150.0, 1.0);
//! let mut analyzer = Analyzer::new(&library, cfg);
//! // for msg in captured_messages { analyzer.process(&msg); }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the binaries regenerating every table and figure of the paper.

pub use gretel_core as core;
pub use gretel_hansel as hansel;
pub use gretel_model as model;
pub use gretel_netcap as netcap;
pub use gretel_sim as sim;
pub use gretel_store as store;
pub use gretel_telemetry as telemetry;

/// Where each part of the paper lives in this repository.
///
/// | Paper | Code |
/// |---|---|
/// | §2 OpenStack architecture, Fig 1 | [`model::service`], [`sim::deployment`] |
/// | §2 communication (REST/RPC via RabbitMQ) | [`model::message`], [`sim::executor`] |
/// | §2.1 VM-create walkthrough | [`model::workflows::Workflows::vm_create`] |
/// | §3 fault model (operational / performance) | [`core::event::FaultMark`], [`core::report::FaultKind`] |
/// | §3.1 representative scenarios | [`sim::scenario`], `examples/` |
/// | §4 composite operations / CFG subsumption | [`model::operation`], `Workflows::vm_snapshot` |
/// | §5 key observations, Fig 3 architecture | [`core::analyzer`], [`core::service`] |
/// | Algorithm 1 (fingerprint generation) | [`core::fingerprint::generate_fingerprint`], [`core::noise_filter`], [`core::lcs`] |
/// | §5.1 distributed state monitoring | [`netcap::agent`], [`telemetry`] |
/// | §5.2 event receiver | [`core::service::run_service`] |
/// | §5.3 anomaly detection (byte scans, latency pairing) | [`core::anomaly`] |
/// | §5.3.1 sliding window α, context buffer β/δ, θ | [`core::window`], [`core::detect`], [`core::config`] |
/// | Algorithm 2 (operation detection, truncation) | [`core::detect::Detector`], [`core::fingerprint::Fingerprint::truncate_at_each`] |
/// | §5.3.1 correlation ids (future work) | `GretelConfig::use_correlation_ids`, `--bin corr_ablation` |
/// | Algorithm 3 (root cause analysis) | [`core::rca::RcaEngine`] |
/// | §6 implementation (symbols, RPC pruning, dual buffer, LS) | [`model::symbol`], `GretelConfig::prune_rpcs`, [`core::window`], [`telemetry::outlier`] |
/// | §7.1 characterization, Table 1, Fig 5 | [`model::tempest`], `--bin table1`, `--bin fig5` |
/// | §7.2 case studies | [`sim::scenario`], `--bin case_studies` |
/// | §7.3 precision, Figs 7a–c, 8a, 8b | `gretel-bench::precision`, `--bin fig7a..fig8b` |
/// | §7.4 throughput & overhead, Fig 8c | [`sim::stream`], [`netcap::stats`], `--bin fig8c`, `--bin overhead` |
/// | §8 limitations | quantified: `--bin loss_ablation` (1), `interfering_operations` scenario (5), [`model::dsl`] + `FingerprintLibrary::extend_characterize` (4, 7) |
/// | §9.2 HANSEL comparison | [`hansel`], `--bin fig8c` |
pub mod paper_map {}

/// The most common imports, for examples and quick experiments.
pub mod prelude {
    pub use gretel_core::{
        analyze_stream, Analyzer, CauseKind, Diagnosis, FaultKind, Fingerprint,
        FingerprintLibrary, GretelConfig, RcaContext, RootCause,
    };
    pub use gretel_model::{
        ApiId, Catalog, Category, HttpMethod, Message, OpSpecId, OperationSpec, Service,
        TempestSuite, Workflows,
    };
    pub use gretel_sim::{
        ApiFault, Deployment, Execution, FaultPlan, FaultScope, InjectedError, RunConfig, Runner,
    };
    pub use gretel_telemetry::TelemetryStore;
}

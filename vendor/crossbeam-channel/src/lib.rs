//! Minimal offline stand-in for `crossbeam-channel`.
//!
//! Implements MPMC bounded/unbounded channels on `Mutex<VecDeque>` +
//! `Condvar`. Semantics match the subset the workspace relies on:
//! `send` blocks when the channel is full and fails once every receiver is
//! gone; `recv` blocks when empty and fails once every sender is gone and the
//! queue has drained. Both halves are cloneable.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    /// Capacity bound; `None` = unbounded.
    cap: Option<usize>,
    /// Signalled when an item is pushed or all senders disconnect.
    not_empty: Condvar,
    /// Signalled when an item is popped or all receivers disconnect.
    not_full: Condvar,
}

/// Error returned by [`Sender::send`] when all receivers have disconnected.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T: Send> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders have disconnected.
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Sender::try_send`].
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity; the value is handed back.
    Full(T),
    /// All receivers have disconnected; the value is handed back.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T: Send> std::error::Error for TrySendError<T> {}

pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Create a bounded channel: `send` blocks once `cap` items are queued.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap))
}

/// Create an unbounded channel: `send` never blocks on capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { inner: inner.clone() }, Receiver { inner })
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            match self.inner.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self.inner.not_full.wait(st).unwrap();
                }
                _ => break,
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking send: fails with [`TrySendError::Full`] instead of
    /// waiting when a bounded channel is at capacity.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.inner.state.lock().unwrap();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.inner.cap {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().senders += 1;
        Sender { inner: self.inner.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().unwrap();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            // Wake receivers blocked on an empty queue so they observe EOF.
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.inner.not_empty.wait(st).unwrap();
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.inner.state.lock().unwrap();
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            self.inner.not_full.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocking iterator that ends when the channel drains after the last
    /// sender disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().receivers += 1;
        Receiver { inner: self.inner.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().unwrap();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            // Wake senders blocked on a full queue so they observe the error.
            self.inner.not_full.notify_all();
        }
    }
}

pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn mpmc_roundtrip() {
        let (tx, rx) = bounded::<u64>(4);
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        let producers: Vec<_> = [tx, tx2]
            .into_iter()
            .enumerate()
            .map(|(k, tx)| {
                thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(k as u64 * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = [rx, rx2]
            .into_iter()
            .map(|rx| thread::spawn(move || rx.iter().count()))
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_drains_then_fails() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded::<u8>(1);
        assert!(tx.try_send(1).is_ok());
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.try_recv(), Ok(1));
        assert!(tx.try_send(3).is_ok());
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn bounded_blocks_until_popped() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(1).unwrap();
        let h = thread::spawn(move || tx.send(2).map(|_| ()).is_ok());
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(h.join().unwrap());
    }
}

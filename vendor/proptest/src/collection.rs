//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Inclusive size bounds for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    pub min: usize,
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Generate a `Vec` whose length is drawn from `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = if self.size.min == self.size.max {
            self.size.min
        } else {
            rng.gen_range(self.size.min..=self.size.max)
        };
        (0..n).map(|_| self.element.gen(rng)).collect()
    }
}

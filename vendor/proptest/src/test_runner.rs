//! Case runner: N deterministically-seeded executions of the property body.

pub use rand::rngs::StdRng as TestRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Run the property body once per case with a per-(test, case) seed. On
/// panic, a drop guard reports which case failed so the run is reproducible
/// (seeds depend only on the test name and case index).
pub fn run_cases<F: FnMut(&mut TestRng)>(cfg: &ProptestConfig, name: &str, mut body: F) {
    for case in 0..cfg.cases {
        let seed = fnv1a(name) ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let guard = CaseGuard { name, case, seed };
        let mut rng = TestRng::seed_from_u64(seed);
        body(&mut rng);
        std::mem::forget(guard);
    }
}

struct CaseGuard<'a> {
    name: &'a str,
    case: u32,
    seed: u64,
}

impl Drop for CaseGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: property `{}` failed at case {} (seed 0x{:016x})",
                self.name, self.case, self.seed
            );
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn seeds_are_stable() {
        let mut first = Vec::new();
        run_cases(&ProptestConfig::with_cases(5), "seeds_are_stable", |rng| {
            first.push(rng.next_u64());
        });
        let mut second = Vec::new();
        run_cases(&ProptestConfig::with_cases(5), "seeds_are_stable", |rng| {
            second.push(rng.next_u64());
        });
        assert_eq!(first, second);
        assert_eq!(first.len(), 5);
        assert!(first.iter().collect::<std::collections::HashSet<_>>().len() > 1);
    }
}

//! Minimal offline stand-in for `proptest`.
//!
//! Runs each property as N deterministically-seeded random cases (no
//! shrinking — on failure the case index and seed are printed so the run can
//! be reproduced). Supports the API subset this workspace uses:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strat, ...) {...} }`
//! * `prop_compose!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`
//! * strategies: integer/float ranges, `&str` character-class regexes
//!   (`[A-Za-z]{1,20}` shapes), `Just`, `any::<T>()`,
//!   `proptest::collection::vec`, `proptest::option::of`, `.prop_map`.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest};
}

/// Define property tests. Each `#[test] fn name(arg in strategy, ...)` body
/// runs `cases` times with fresh strategy draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                $crate::test_runner::run_cases(&__cfg, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::gen(&($strat), __rng);)+
                    $body
                });
            }
        )*
    };
}

/// Compose a strategy out of other strategies:
/// `prop_compose! { fn name(params)(bindings in strategies) -> Out { expr } }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
            ($($arg:pat_param in $strat:expr),+ $(,)?)
            -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::from_fn(move |__rng| {
                $(let $arg = $crate::strategy::Strategy::gen(&($strat), __rng);)+
                $body
            })
        }
    };
}

/// Choose uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::weighted_union(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::weighted_union(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

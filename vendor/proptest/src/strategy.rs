//! Strategy trait and the built-in strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A reusable recipe for generating random values.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase for heterogeneous collections (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.gen(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy from a generation closure (used by `prop_compose!`).
pub fn from_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
    FnStrategy(f)
}

pub struct FnStrategy<F>(F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produce a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen(rng))
    }
}

/// Weighted choice between type-erased strategies (`prop_oneof!`).
pub fn weighted_union<T>(choices: Vec<(u32, BoxedStrategy<T>)>) -> WeightedUnion<T> {
    assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
    WeightedUnion { choices }
}

pub struct WeightedUnion<T> {
    choices: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        let total: u32 = self.choices.iter().map(|(w, _)| *w).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, s) in &self.choices {
            if pick < *w {
                return s.gen(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum mismatch")
    }
}

// ---- numeric ranges ----

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

// ---- any::<T>() ----

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---- string regexes ----

/// `&str` literals act as regex strategies. Supports the subset the
/// workspace uses: concatenations of literal characters and character
/// classes (`[a-z0-9/._-]`), each with an optional `{n}` / `{m,n}` / `?` /
/// `+` / `*` quantifier.
impl Strategy for &str {
    type Value = String;
    fn gen(&self, rng: &mut TestRng) -> String {
        let elements = parse_pattern(self);
        let mut out = String::new();
        for (chars, min, max) in &elements {
            let n = if min == max { *min } else { rng.gen_range(*min..=*max) };
            for _ in 0..n {
                out.push(chars[rng.gen_range(0..chars.len())]);
            }
        }
        out
    }
}

type Element = (Vec<char>, usize, usize);

fn parse_pattern(pattern: &str) -> Vec<Element> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut elements = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i;
                let class = expand_class(&chars[i + 1..close], pattern);
                i = close + 1;
                class
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad quantifier"),
                            hi.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        elements.push((set, min, max));
    }
    elements
}

fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // `a-z` range (a trailing `-` is a literal).
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
            assert!(lo <= hi, "bad range in pattern {pattern:?}");
            for c in lo..=hi {
                out.push(char::from_u32(c).unwrap());
            }
            i += 3;
        } else {
            out.push(body[i]);
            i += 1;
        }
    }
    assert!(!out.is_empty(), "empty character class in pattern {pattern:?}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;
    use rand::SeedableRng;

    #[test]
    fn regex_subset_generates_in_class() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = "[a-z0-9/._-]{0,40}".gen(&mut rng);
            assert!(s.len() <= 40);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "/._-".contains(c)));
            let t = "[A-Za-z]{1,20}".gen(&mut rng);
            assert!((1..=20).contains(&t.len()));
            assert!(t.chars().all(|c| c.is_ascii_alphabetic()));
        }
    }

    #[test]
    fn literal_and_quantifiers() {
        let mut rng = TestRng::seed_from_u64(2);
        assert_eq!("abc".gen(&mut rng), "abc");
        let s = "x[01]{3}y?".gen(&mut rng);
        assert!(s.starts_with('x'));
        assert!(s.len() == 4 || s.len() == 5);
    }

    #[test]
    fn oneof_and_map() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = crate::prop_oneof![Just(1u8), Just(2u8)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            seen.insert(s.gen(&mut rng));
        }
        assert_eq!(seen.len(), 2);
        let mapped = (0usize..5).prop_map(|i| i * 10);
        for _ in 0..20 {
            assert_eq!(mapped.gen(&mut rng) % 10, 0);
        }
    }
}

//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Generate `Some(inner)` half the time, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn gen(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(0.5) {
            Some(self.inner.gen(rng))
        } else {
            None
        }
    }
}

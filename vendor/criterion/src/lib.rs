//! Minimal offline stand-in for `criterion`.
//!
//! Implements the bench-harness API surface this workspace uses —
//! `criterion_group!`/`criterion_main!`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::{iter, iter_batched}`, `Throughput`,
//! `BenchmarkId`, `sample_size` — over plain `Instant` timing. Each benchmark
//! runs `sample_size` samples (auto-sized iteration counts, ~5 ms per
//! sample), and the median ns/iter plus derived throughput is printed.
//! A positional CLI argument acts as a substring filter, like real criterion
//! (`cargo bench --bench throughput -- gretel`).

use std::fmt::Display;
use std::hint::black_box as bb;
use std::time::Instant;

const TARGET_SAMPLE_NS: u128 = 5_000_000;

/// Measurement throughput annotation: scales the report into elem/s or MiB/s.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Composite benchmark id (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// How `iter_batched` amortizes setup; only a hint, all variants time the
/// routine per-invocation here.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First positional argument = substring filter (cargo also passes
        // flags like `--bench`, which we ignore).
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { sample_size: 100, filter }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            sample_size: self.sample_size,
            criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        let name = id.to_string();
        if self.matches(&name) {
            run_bench(&name, None, sample_size, f);
        }
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().map_or(true, |f| name.contains(f))
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        if self.criterion.matches(&name) {
            run_bench(&name, self.throughput, self.sample_size, f);
        }
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        if self.criterion.matches(&name) {
            run_bench(&name, self.throughput, self.sample_size, |b| f(b, input));
        }
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) {
    let mut bencher = Bencher { sample_size, samples_ns_per_iter: Vec::new() };
    f(&mut bencher);
    let mut samples = bencher.samples_ns_per_iter;
    if samples.is_empty() {
        // The closure never called iter(); nothing to report.
        println!("{name:<50} (no measurement)");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    let mut line = format!(
        "{name:<50} time: [{} {} {}]",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    );
    match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            let per_sec = n as f64 / (median * 1e-9);
            line.push_str(&format!("  thrpt: {} elem/s", fmt_count(per_sec)));
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            let per_sec = n as f64 / (median * 1e-9);
            line.push_str(&format!("  thrpt: {:.2} MiB/s", per_sec / (1024.0 * 1024.0)));
        }
        _ => {}
    }
    println!("{line}");
}

fn fmt_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn fmt_count(n: f64) -> String {
    if n >= 1e6 {
        format!("{:.3} M", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.2} K", n / 1e3)
    } else {
        format!("{n:.1}")
    }
}

pub struct Bencher {
    sample_size: usize,
    /// ns per iteration, one entry per sample.
    samples_ns_per_iter: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, auto-sizing the per-sample iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration run.
        let start = Instant::now();
        bb(routine());
        let once_ns = start.elapsed().as_nanos().max(1);
        let iters = (TARGET_SAMPLE_NS / once_ns).clamp(1, 1_000_000) as usize;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                bb(routine());
            }
            let total = start.elapsed().as_nanos() as f64;
            self.samples_ns_per_iter.push(total / iters as f64);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        // Warm-up + calibration run.
        let input = setup();
        let start = Instant::now();
        bb(routine(input));
        let once_ns = start.elapsed().as_nanos().max(1);
        let iters = (TARGET_SAMPLE_NS / once_ns).clamp(1, 10_000) as usize;
        for _ in 0..self.sample_size {
            let mut total = 0u128;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                bb(routine(input));
                total += start.elapsed().as_nanos();
            }
            self.samples_ns_per_iter.push(total as f64 / iters as f64);
        }
    }
}

/// `criterion_group!` — both the `name/config/targets` and the positional
/// form expand to a function running every target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut __criterion: $crate::Criterion = $config;
            $($target(&mut __criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    bb(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion { sample_size: 5, filter: None };
        let mut ran = 0usize;
        c.bench_function("unit/iter", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 5);
    }

    #[test]
    fn group_and_batched() {
        let mut c = Criterion { sample_size: 3, filter: None };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }

    #[test]
    fn filter_skips() {
        let mut c = Criterion { sample_size: 2, filter: Some("nomatch".into()) };
        let mut ran = false;
        c.bench_function("other", |b| {
            b.iter(|| {
                ran = true;
            })
        });
        assert!(!ran);
    }
}

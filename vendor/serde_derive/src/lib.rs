//! Offline `Serialize`/`Deserialize` derives, written directly against
//! `proc_macro` (the registry is unreachable, so `syn`/`quote` are not
//! available). Supports exactly the shapes this workspace uses:
//!
//! * named-field structs, tuple structs (newtypes are transparent), unit
//!   structs;
//! * enums with unit, tuple, and named-field variants, externally tagged
//!   (`"Variant"` / `{"Variant": ...}`) like real serde;
//! * no generics, no `#[serde(...)]` attributes.
//!
//! Parsing walks the raw token stream; code generation builds source text and
//! re-parses it, using `::serde::` paths plus prelude items only.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---- input model ----

enum Shape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Input {
    name: String,
    shape: Shape,
}

// ---- parsing ----

fn parse_input(input: TokenStream) -> Input {
    let mut it = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, including expanded doc comments) and
    // the visibility qualifier.
    let kind = loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde derive: malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                panic!("serde derive: unsupported item starting with `{s}`");
            }
            other => panic!("serde derive: unexpected token {other:?}"),
        }
    };

    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };

    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde derive: generic types are not supported by the vendored derive");
        }
    }

    let shape = if kind == "struct" {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde derive: unexpected struct body {other:?}"),
        }
    } else {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unexpected enum body {other:?}"),
        }
    };

    Input { name, shape }
}

/// Parse `name: Type, ...` out of a brace group, skipping per-field
/// attributes and visibility. Type tokens are consumed up to the next
/// top-level comma (tracking `<`/`>` depth for generic types).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                    it.next(); // the [...] group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    it.next();
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match it.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("serde derive: expected field name, got {other:?}"),
        }
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field name, got {other:?}"),
        }
        // Consume the type up to a top-level comma.
        let mut angle = 0i32;
        loop {
            match it.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == ',' && angle == 0 {
                        it.next();
                        break;
                    }
                    if c == '<' {
                        angle += 1;
                    } else if c == '>' {
                        angle -= 1;
                    }
                    it.next();
                }
                Some(_) => {
                    it.next();
                }
            }
        }
    }
    fields
}

/// Count the fields of a tuple struct / tuple variant by top-level commas.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut saw_tokens = false;
    let mut angle = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && angle == 0 {
                    count += 1;
                    saw_tokens = false;
                    continue;
                }
                if c == '<' {
                    angle += 1;
                } else if c == '>' {
                    angle -= 1;
                }
                saw_tokens = true;
            }
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        // Skip variant attributes (e.g. `#[default]`, doc comments).
        while let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == '#' {
                it.next();
                it.next();
            } else {
                break;
            }
        }
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: expected variant name, got {other:?}"),
        };
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                VariantShape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                VariantShape::Tuple(n)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        let mut angle = 0i32;
        loop {
            match it.next() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == ',' && angle == 0 {
                        break;
                    }
                    if c == '<' {
                        angle += 1;
                    } else if c == '>' {
                        angle -= 1;
                    }
                }
                Some(_) => {}
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---- code generation ----

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let mut out = String::new();
    out.push_str(&format!(
        "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n"
    ));
    match &input.shape {
        Shape::Unit => out.push_str("        ::serde::Value::Null\n"),
        Shape::Named(fields) => {
            out.push_str("        ::serde::Value::Object(vec![\n");
            for f in fields {
                out.push_str(&format!(
                    "            (String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),\n"
                ));
            }
            out.push_str("        ])\n");
        }
        Shape::Tuple(1) => {
            out.push_str("        ::serde::Serialize::to_value(&self.0)\n");
        }
        Shape::Tuple(n) => {
            out.push_str("        ::serde::Value::Array(vec![\n");
            for i in 0..*n {
                out.push_str(&format!("            ::serde::Serialize::to_value(&self.{i}),\n"));
            }
            out.push_str("        ])\n");
        }
        Shape::Enum(variants) => {
            out.push_str("        match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => out.push_str(&format!(
                        "            {name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),\n"
                    )),
                    VariantShape::Tuple(1) => out.push_str(&format!(
                        "            {name}::{vn}(__f0) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        out.push_str(&format!(
                            "            {name}::{vn}({}) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Value::Array(vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        out.push_str(&format!(
                            "            {name}::{vn} {{ {} }} => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Value::Object(vec![{}]))]),\n",
                            fields.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            out.push_str("        }\n");
        }
    }
    out.push_str("    }\n}\n");
    out.parse().expect("serde derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let mut out = String::new();
    out.push_str(&format!(
        "impl ::serde::Deserialize for {name} {{\n    fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n"
    ));
    match &input.shape {
        Shape::Unit => out.push_str(&format!("        Ok({name})\n")),
        Shape::Named(fields) => {
            out.push_str(&format!(
                "        if __v.as_object().is_none() {{\n            return Err(::serde::Error::msg(format!(\"expected object for {name}, got {{}}\", __v.kind())));\n        }}\n"
            ));
            out.push_str(&format!("        Ok({name} {{\n"));
            for f in fields {
                out.push_str(&format!(
                    "            {f}: ::serde::Deserialize::from_value(__v.get(\"{f}\").unwrap_or(&::serde::Value::Null)).map_err(|__e| ::serde::Error::context(\"{name}.{f}\", __e))?,\n"
                ));
            }
            out.push_str("        })\n");
        }
        Shape::Tuple(1) => {
            out.push_str(&format!(
                "        Ok({name}(::serde::Deserialize::from_value(__v).map_err(|__e| ::serde::Error::context(\"{name}\", __e))?))\n"
            ));
        }
        Shape::Tuple(n) => {
            out.push_str(&format!(
                "        let __items = __v.as_array().ok_or_else(|| ::serde::Error::msg(format!(\"expected array for {name}, got {{}}\", __v.kind())))?;\n"
            ));
            out.push_str(&format!(
                "        if __items.len() != {n} {{\n            return Err(::serde::Error::msg(format!(\"expected {n} elements for {name}, got {{}}\", __items.len())));\n        }}\n"
            ));
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            out.push_str(&format!("        Ok({name}({}))\n", items.join(", ")));
        }
        Shape::Enum(variants) => {
            out.push_str("        match __v {\n");
            // Unit variants arrive as bare strings.
            out.push_str("            ::serde::Value::Str(__s) => match __s.as_str() {\n");
            for v in variants {
                if matches!(v.shape, VariantShape::Unit) {
                    let vn = &v.name;
                    out.push_str(&format!(
                        "                \"{vn}\" => Ok({name}::{vn}),\n"
                    ));
                }
            }
            out.push_str(&format!(
                "                __other => Err(::serde::Error::msg(format!(\"unknown {name} variant {{__other}}\"))),\n            }},\n"
            ));
            // Data-carrying variants arrive as single-key objects.
            out.push_str("            ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {\n");
            out.push_str("                let (__tag, __inner) = &__pairs[0];\n");
            out.push_str("                match __tag.as_str() {\n");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {}
                    VariantShape::Tuple(1) => out.push_str(&format!(
                        "                    \"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__inner).map_err(|__e| ::serde::Error::context(\"{name}::{vn}\", __e))?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        out.push_str(&format!(
                            "                    \"{vn}\" => {{\n                        let __items = __inner.as_array().ok_or_else(|| ::serde::Error::msg(\"expected array for {name}::{vn}\"))?;\n                        if __items.len() != {n} {{\n                            return Err(::serde::Error::msg(\"wrong arity for {name}::{vn}\"));\n                        }}\n                        Ok({name}::{vn}({}))\n                    }}\n",
                            items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(__inner.get(\"{f}\").unwrap_or(&::serde::Value::Null)).map_err(|__e| ::serde::Error::context(\"{name}::{vn}.{f}\", __e))?"
                                )
                            })
                            .collect();
                        out.push_str(&format!(
                            "                    \"{vn}\" => Ok({name}::{vn} {{ {} }}),\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "                    __other => Err(::serde::Error::msg(format!(\"unknown {name} variant {{__other}}\"))),\n                }}\n            }}\n"
            ));
            out.push_str(&format!(
                "            __other => Err(::serde::Error::msg(format!(\"expected {name}, got {{}}\", __other.kind()))),\n        }}\n"
            ));
        }
    }
    out.push_str("    }\n}\n");
    out.parse().expect("serde derive: generated invalid Deserialize impl")
}

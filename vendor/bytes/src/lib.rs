//! Minimal offline stand-in for the `bytes` crate.
//!
//! The growth container has no network access and an empty cargo registry, so
//! the workspace vendors the small API subset it actually uses: `Bytes`
//! (immutable, cheaply cloneable), `BytesMut` (append + consume-from-front),
//! and the `Buf`/`BufMut` traits with little-endian accessors.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable byte buffer. Cloning is O(1) (shared `Arc<[u8]>` plus a range).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]), start: 0, end: 0 }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A zero-copy sub-view sharing the same allocation: the returned
    /// `Bytes` clones the `Arc`, never the bytes. Panics when the range
    /// falls outside `0..len`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of range for {}", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::from(v.into_boxed_slice()), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }
}

/// A byte slice is itself a cursor: reading narrows the slice in place.
/// This is the zero-copy decode path — a codec generic over [`Buf`] can
/// parse straight out of a shared arena without staging into `BytesMut`.
impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of slice");
        *self = &self[n..];
    }
}

/// Growable byte buffer supporting append at the back and consumption from
/// the front (`advance` / `split_to`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    start: usize,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new(), start: 0 }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap), start: 0 }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Split off the first `at` bytes into a new `BytesMut`, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to past end of BytesMut");
        let out = self.data[self.start..self.start + at].to_vec();
        self.start += at;
        self.compact_if_large();
        BytesMut { data: out, start: 0 }
    }

    /// Freeze into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        if self.start == 0 {
            Bytes::from(self.data)
        } else {
            Bytes::from(self.data[self.start..].to_vec())
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    /// Reclaim consumed front space once it dominates the allocation.
    fn compact_if_large(&mut self) {
        if self.start > 4096 && self.start * 2 > self.data.len() {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { data: v.to_vec(), start: 0 }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of BytesMut");
        self.start += n;
        self.compact_if_large();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Read side: sequential little-endian decoding over a contiguous buffer.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, n: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write side: sequential little-endian encoding.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16_le(0xBEEF);
        b.put_u32_le(0xDEADBEEF);
        b.put_u64_le(0x0123_4567_89AB_CDEF);
        b.put_slice(b"tail");
        let mut r = BytesMut::from(&b[..]);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEADBEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut tail = [0u8; 4];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn split_and_freeze() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello world");
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&b[..], b" world");
        let frozen = b.freeze();
        assert_eq!(frozen.to_vec(), b" world");
        assert_eq!(frozen.len(), 6);
        let c = frozen.clone();
        assert_eq!(&c[..], &frozen[..]);
    }

    #[test]
    fn slice_shares_the_allocation() {
        let b = Bytes::from(b"hello world".to_vec());
        let tail = b.slice(6..);
        assert_eq!(&tail[..], b"world");
        let mid = b.slice(3..8);
        assert_eq!(&mid[..], b"lo wo");
        let sub = mid.slice(1..=2);
        assert_eq!(&sub[..], b"o ");
        assert_eq!(b.slice(..).len(), b.len());
        assert!(b.slice(11..).is_empty());
        assert!(std::panic::catch_unwind(|| b.slice(5..20)).is_err());
    }

    #[test]
    fn slices_decode_in_place() {
        let mut s: &[u8] = &[7, 0xEF, 0xBE, b'x'];
        assert_eq!(s.get_u8(), 7);
        assert_eq!(s.get_u16_le(), 0xBEEF);
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.chunk(), b"x");
    }

    #[test]
    fn advance_compacts() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&vec![1u8; 10_000]);
        b.advance(9_000);
        assert_eq!(b.len(), 1_000);
        assert_eq!(b[0], 1);
    }
}

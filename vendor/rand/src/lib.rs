//! Minimal offline stand-in for `rand` 0.8.
//!
//! Deterministic xoshiro256** generator behind the `rand 0.8` API subset the
//! workspace uses: `StdRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`, and
//! `seq::SliceRandom::{shuffle, choose}`. Streams are stable across runs and
//! platforms — the simulator's reproducibility (and the parallel-characterize
//! equivalence tests) depend on that, not on matching upstream `rand` output.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core + convenience sampling API (subset of `rand::Rng`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Map a u64 to [0, 1) with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator, seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Range sampling (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates, high to low.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let x = rng.gen_range(3u8..=3);
            assert_eq!(x, 3);
        }
    }

    #[test]
    fn gen_bool_mixes() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

//! The JSON-shaped data model shared by `serde` and `serde_json`.

/// A JSON-like value tree. Objects preserve insertion order (a `Vec` of
/// pairs), which keeps serialized output deterministic and matches the
/// declaration order of derived struct fields.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a field in an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

//! Minimal offline stand-in for `serde`.
//!
//! The growth container has no network access, so the workspace vendors a
//! small data-model-based serde: types convert to/from a JSON-like
//! [`value::Value`] tree, and `serde_json` renders/parses that tree. The
//! `Serialize`/`Deserialize` derive macros (vendored `serde_derive`, written
//! against `proc_macro` directly) generate these conversions for plain
//! structs and externally-tagged enums — exactly the shapes this workspace
//! uses (no `#[serde(...)]` attributes, no generics).

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::Value;

/// Serialization/deserialization error: a message plus context breadcrumbs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }

    /// Prefix `ctx` to an inner error (used by derived code for field paths).
    pub fn context(ctx: &str, e: Error) -> Self {
        Error(format!("{ctx}: {}", e.0))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Convert `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- Serialize impls for std types ----

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if (*self as i128) < 0 {
                    Value::I64(*self as i64)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }
    )*};
}
ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

// ---- Deserialize impls for std types ----

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i128 = match v {
                    Value::U64(n) => *n as i128,
                    Value::I64(n) => *n as i128,
                    Value::F64(n) if n.fract() == 0.0 => *n as i128,
                    other => return Err(Error::msg(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::msg(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(n) => Ok(*n),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::msg(format!("expected number, got {}", other.kind()))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|n| n as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::msg(format!("expected 2-element array, got {}", other.kind()))),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::msg(format!("expected 3-element array, got {}", other.kind()))),
        }
    }
}

//! Minimal offline stand-in for `serde_json`: renders and parses the
//! [`serde::Value`] tree. Supports exactly the entry points the workspace
//! uses: [`to_string`], [`to_string_pretty`], [`from_str`].

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty JSON (2-space indent, `": "` separators).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON and reconstruct `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

// ---- writer ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, n: f64) {
    if n.is_finite() {
        // `{}` prints integral f64 without a fraction ("1"); that still
        // round-trips because numeric Deserialize accepts integers.
        out.push_str(&format!("{n}"));
    } else {
        // JSON has no NaN/Infinity; real serde_json errors here, we emit null.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(Error::msg("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&String::from("a\"b\n")).unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5e2").unwrap(), 150.0);
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
        assert_eq!(from_str::<String>("\"a\\u0041\"").unwrap(), "aA");
    }

    #[test]
    fn roundtrip_collections() {
        let v: Vec<Option<u16>> = vec![Some(1), None, Some(3)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u16>>>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_format() {
        let v: Vec<u8> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn parse_nested() {
        let v: Value = super::parse_value("{\"a\": [1, {\"b\": null}], \"c\": -2.5}").unwrap();
        assert_eq!(v.get("c"), Some(&Value::F64(-2.5)));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0], Value::U64(1));
        assert_eq!(arr[1].get("b"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("4x").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
        assert!(super::parse_value("{\"a\": }").is_err());
        assert!(super::parse_value("[1, 2").is_err());
    }
}
